package core

import "math/bits"

// Thread-local allocation magazines (DESIGN.md §7.2). A magazine is a
// per-thread, per-class cache of free blocks privatized from one owned
// slab: one bitset word's worth of blocks moves from the slab's shared
// bitset into a single-writer magazine line, after which allocation is
// a one-line mask update plus one fence — no descriptor, bitset, or
// free-count traffic. The shared slab protocol is touched only on
// refill (privatize a word) and drain (return the mask).
//
// The magazine line is a durable ownership record, exactly like the
// oplog: word 0 packs the source slab, bitset word, and class; word 1
// is the mask of privatized free blocks. Crash-time reclamation unions
// a dead thread's masks back into the slab bitsets during recovery
// (reclaimMagazines), and the drain-time ledger audit counts magazine
// blocks as free (magUnionMasks), so a privatized block is never lost.
//
// Safety invariants, each load-bearing for recovery:
//
//   - mask != 0 implies the source slab is owned by this thread, carries
//     the magazine's class, and sits on the sized list with free count
//     >= 1 (magRefill's leave-one rule). It therefore cannot be stolen
//     (stealing needs a zero remote countdown, which needs every block
//     remotely freed — impossible while the thread holds mask blocks),
//     detached, disowned, or pushed global while the magazine is live.
//   - mask and the slab bitset are disjoint: refill clears the bits it
//     privatizes under a two-phase record, and frees enter exactly one
//     of the two.
//   - The volatile mirror (threadState.mags) is invalidated whenever
//     the slab's state machine moves (full/empty transitions) — at
//     which point the mask is provably zero, or is drained first.
//
// Magazines run only on incoherent devices (the coherent pod has no
// flush/fence protocol cost to avoid, and keeping the DRAM baseline
// byte-identical keeps the hotpath comparison honest) and can be
// toggled at runtime (SetMagazines) so crash harnesses exercise both
// the magazine and the classic paths.

// magSlot is the volatile mirror of one magazine line.
type magSlot struct {
	slab int32 // source slab index + 1; 0 = empty
	word int16 // bitset word the mask covers
	mask uint64
}

// magW returns the SWcc word of thread tid's class-c magazine line.
func (s *slabHeap) magW(tid, class int) int {
	return s.magBase + (tid*(len(s.classes)-1)+(class-1))*lineWords
}

// Magazine meta word: [ slab+1 : 32 | bitset word : 16 | class : 8 ].
func packMagMeta(idx, word, class int) uint64 {
	return uint64(uint32(idx+1)) | uint64(uint16(word))<<32 | uint64(uint8(class))<<48
}

func magMetaSlab(w uint64) uint32 { return uint32(w) }
func magMetaWord(w uint64) int    { return int(uint16(w >> 32)) }
func magMetaClass(w uint64) int   { return int(uint8(w >> 48)) }

// magsEnabled gates the magazine fast path: incoherent device, the
// recovery protocol on, not configured off, and the runtime toggle on.
// NonRecoverable turns magazines off because their entire value is
// amortizing durability traffic — with no oplog flushes or fences to
// coalesce, the classic path runs on cached stores alone and a magazine
// line's flush+fence would be pure added cost.
func (h *Heap) magsEnabled() bool {
	return !h.coherent && !h.cfg.NonRecoverable && !h.cfg.DisableMagazines && !h.magsOff.Load()
}

// SetMagazines toggles the magazine fast path at runtime. Toggling off
// does not drain: privatized blocks stay in their (durable) magazine
// lines, invisible to the classic path, until DrainMagazines or a
// toggle back on; the ledger audit and crash reclamation account for
// them either way. Chaos harnesses flip this so both the magazine and
// the classic crash points fire under one workload.
func (h *Heap) SetMagazines(on bool) { h.magsOff.Store(!on) }

// MagazinesEnabled reports whether the magazine fast path is active.
func (h *Heap) MagazinesEnabled() bool { return h.magsEnabled() }

// magAt returns the mirror slot for class, or nil if this thread has
// never refilled a magazine on this heap.
func (s *slabHeap) magAt(ts *threadState, class int) *magSlot {
	mags := ts.mags[s.magIdx]
	if mags == nil {
		return nil
	}
	return &mags[class]
}

// magPop takes one block from the class magazine. The commit discipline
// is the tightest in the allocator: the handoff record (opMagAlloc) and
// the mask-clear are both plain SWcc stores with no crash point between
// them, so a single fence commits them atomically — writeOplogDeferred's
// legality conditions. Redo reads the durable mask: bit cleared means
// the pop committed (report the pending block for adoption), bit still
// set means it never happened (reclamation unions the block back).
func (s *slabHeap) magPop(ts *threadState, tid, class int) (Ptr, bool) {
	m := s.magAt(ts, class)
	if m == nil || m.mask == 0 {
		return 0, false
	}
	b := bits.TrailingZeros64(m.mask)
	idx := int(m.slab) - 1
	block := int(m.word)*64 + b
	s.h.writeOplogDeferred(tid, ts, s.opc(opMagAlloc), uint32(idx), uint16(block), uint16(class))
	m.mask &^= 1 << uint(b)
	mw := s.magW(tid, class)
	ts.cache.Store(mw+1, m.mask)
	ts.cache.FlushOpt(mw + 1)
	if !s.h.cfg.SkipCommitFence {
		ts.cache.Fence()
	}
	s.cp(tid, "magalloc.post-take")
	s.h.clearOplog(tid, ts)
	return s.ptrOf(idx, block, class), true
}

// magFree returns block into the class magazine if the magazine covers
// its slab and bitset word. No record is needed: the mask-set is a
// single store committed by its own fence, after which the free is
// durable (an older record still cached as cleared is committed by the
// same fence, so redo never resurrects a completed pop). On a window
// miss it tries to re-target the magazine at the freed block's word
// (magAdopt) before falling back to the classic local free.
//
// A slab whose last allocated blocks return through the mask stays on
// the sized list with fc < total — deliberate retention, bounded at one
// bitset word per (thread, class): the next same-class alloc reuses the
// window without a protocol round, and DrainMagazines returns the
// blocks for callers that need the slab to complete its empty
// transition (harness drains, exact-footprint audits).
func (s *slabHeap) magFree(ts *threadState, tid, idx, class, block int) bool {
	m := s.magAt(ts, class)
	if m == nil || int(m.slab) != idx+1 || int(m.word) != block/64 {
		return s.magAdopt(ts, m, tid, idx, class, block)
	}
	bit := uint64(1) << (uint(block) % 64)
	if m.mask&bit != 0 {
		s.h.fail("%s heap: double free into magazine (slab %d block %d)", s.name, idx, block)
	}
	if s.blockBit(ts, idx, block) {
		s.h.fail("%s heap: double free of slab %d block %d (free in bitset, freed into magazine)",
			s.name, idx, block)
	}
	m.mask |= bit
	mw := s.magW(tid, class)
	ts.cache.Store(mw+1, m.mask)
	ts.cache.FlushOpt(mw + 1)
	ts.cache.Fence()
	s.cp(tid, "magfree.post-put")
	return true
}

// magAdopt re-targets the class magazine at the freed block's bitset
// word, so a burst of frees into a word the magazine no longer covers
// (threadtest's batch boundary: the mirror points at the most recently
// refilled word) becomes one window switch plus single-line magFrees
// instead of a classic protocol round per free.
//
// Policy: an empty magazine adopts any owned slab's word outright; a
// live window on the SAME slab is drained first (the common ping-pong
// between two words of the sized-list head); a live window on another
// slab stays put — cross-slab churn would thrash the window for no
// locality gain. The drain's record carries the in-flight free's block
// as pending (ver = block+1), exactly like the alloc-nested drain: the
// block is in neither the mask nor the bitset while the drain runs, so
// a crash anywhere inside it makes redo report the block for adoption
// and the harness's "a requested free is irrevocable" contract holds —
// the application re-owns the pointer and frees it again.
//
// The adoption itself needs no record: meta and mask share one SWcc
// line, stored and committed under one fence before the free returns,
// so the acked free is durable and the adversary persists the new
// window atomically or not at all — the only crash point sits after
// the fence, where nothing of this op is still in play.
func (s *slabHeap) magAdopt(ts *threadState, m *magSlot, tid, idx, class, block int) bool {
	if m != nil && m.mask != 0 {
		if int(m.slab) != idx+1 {
			return false
		}
		s.magDrain(ts, tid, class, block)
	}
	if s.getFreeCount(ts, idx) == 0 {
		// Full (detached) slab: the classic path's rescue reattaches it.
		// Adopting here would break mask != 0 => free count >= 1, the
		// invariant that keeps magazine-backed slabs unstealable.
		return false
	}
	if s.blockBit(ts, idx, block) {
		s.h.fail("%s heap: double free of slab %d block %d (free in bitset, adopted into magazine)",
			s.name, idx, block)
	}
	mw := s.magW(tid, class)
	if v := ts.cache.Load(mw + 1); v != 0 {
		// Mirror empty but the durable line holds blocks: a prior
		// incarnation's magazine was never reclaimed (reattach without
		// recovery). Overwriting it would leak every masked block.
		s.h.fail("%s heap: adopt over a live magazine line for thread %d class %d (mask %#x)",
			s.name, tid, class, v)
	}
	word := block / 64
	bit := uint64(1) << (uint(block) % 64)
	ts.cache.Store(mw, packMagMeta(idx, word, class))
	ts.cache.Store(mw+1, bit)
	ts.cache.FlushOpt(mw)
	ts.cache.Fence()
	s.cp(tid, "magfree.post-adopt")
	mags := ts.mags[s.magIdx]
	if mags == nil {
		mags = make([]magSlot, len(s.classes))
		ts.mags[s.magIdx] = mags
	}
	mags[class] = magSlot{slab: int32(idx + 1), word: int16(word), mask: bit}
	return true
}

// magRefill privatizes one bitset word of the sized-list head slab into
// the class magazine. Two-phase (DESIGN.md §7.2): phase 1 makes the
// record and the filled magazine line durable under one fence, phase 2
// clears the privatized bits from the shared bitset and commits at a
// second fence. A crash between the phases leaves the blocks in both
// the mask and the bitset; reclamation's idempotent union resolves the
// overlap. The leave-one rule keeps the slab's free count >= 1, so a
// magazine-backed slab never reaches the full transition while its
// mask is live.
//
// Returns false (caller falls back to the classic path) when the sized
// list is empty or the word would leave nothing behind.
func (s *slabHeap) magRefill(ts *threadState, tid, class int) bool {
	head := ts.cache.Load(s.localW(tid, class))
	if head == 0 {
		return false
	}
	idx := int(head - 1)
	total := s.blocksPer(class)
	base := s.bitsetW(idx)
	words := (total + 63) / 64
	word := -1
	var take uint64
	for w := 0; w < words; w++ {
		if v := ts.cache.Load(base + w); v != 0 {
			word, take = w, v
			break
		}
	}
	if word < 0 {
		s.h.fail("%s heap: full slab %d on sized list %d", s.name, idx, class)
	}
	fc := s.getFreeCount(ts, idx)
	n := uint32(bits.OnesCount64(take))
	if n == fc {
		// The word holds the slab's last free blocks: leave the lowest
		// one to the classic path so the free count stays positive.
		take &= take - 1
		n--
		if take == 0 {
			return false
		}
	}
	mw := s.magW(tid, class)
	if v := ts.cache.Load(mw + 1); v != 0 {
		// The mirror said empty but the durable line holds blocks: a prior
		// incarnation's magazine was never reclaimed (reattach without
		// recovery). Overwriting it would leak every masked block.
		s.h.fail("%s heap: refill over a live magazine line for thread %d class %d (mask %#x)",
			s.name, tid, class, v)
	}
	s.h.writeOplog(tid, ts, s.opc(opMagRefill), uint32(idx), uint16(class)<<8|uint16(word), 0)
	ts.cache.Store(mw, packMagMeta(idx, word, class))
	ts.cache.Store(mw+1, take)
	ts.cache.FlushOpt(mw)
	ts.cache.Fence()
	s.cp(tid, "magrefill.post-oplog")
	// Phase 2: the magazine line is durable; remove the privatized
	// blocks from the shared ledger. These two lines are the open crash
	// window the persist sweep attacks at magrefill.pre-commit — any
	// dropped subset is repaired by reclamation's union.
	ts.cache.Store(base+word, ts.cache.Load(base+word)&^take)
	s.setFreeCount(ts, idx, fc-n)
	s.cp(tid, "magrefill.pre-commit")
	ts.cache.Fence()
	s.h.clearOplog(tid, ts)
	mags := ts.mags[s.magIdx]
	if mags == nil {
		mags = make([]magSlot, len(s.classes))
		ts.mags[s.magIdx] = mags
	}
	mags[class] = magSlot{slab: int32(idx + 1), word: int16(word), mask: take}
	return true
}

// magDrain returns the class magazine's blocks to their slab. pending
// is the block the caller holds mid-operation — the classic take when
// the drain runs nested inside alloc's full transition (the magazine
// was toggled off and classic allocs emptied the slab around a live
// mask), or the block being freed when magAdopt retires a stale window
// — or -1 for a standalone drain. Its record carries pending+1 in ver
// so the in-flight pointer stays recoverable, exactly like opDetach.
func (s *slabHeap) magDrain(ts *threadState, tid, class, pending int) {
	m := s.magAt(ts, class)
	idx := int(m.slab) - 1
	word := int(m.word)
	ver := uint16(0)
	if pending >= 0 {
		ver = uint16(pending + 1)
	}
	s.h.writeOplog(tid, ts, s.opc(opMagDrain), uint32(idx), uint16(class)<<8|uint16(word), ver)
	s.cp(tid, "magdrain.post-oplog")
	wi := s.bitsetW(idx) + word
	ts.cache.Store(wi, ts.cache.Load(wi)|m.mask)
	fc := s.getFreeCount(ts, idx) + uint32(bits.OnesCount64(m.mask))
	s.setFreeCount(ts, idx, fc)
	s.cp(tid, "magdrain.pre-commit")
	ts.cache.Fence()
	// The union is durable; now retire the magazine line. Its clear
	// commits at the next fence — until then a crash re-unions the same
	// bits, which are already set (idempotent).
	mw := s.magW(tid, class)
	ts.cache.Store(mw, 0)
	ts.cache.Store(mw+1, 0)
	ts.cache.FlushOpt(mw)
	s.cp(tid, "magdrain.post-clear")
	*m = magSlot{}
	// A standalone drain can complete the slab (every block outside the
	// magazine was already free); hand it back through the normal
	// transition. Nested drains cannot get here: the pending block is
	// still allocated, so fc < total.
	if int(fc) == s.blocksPer(class) {
		s.emptyTransition(ts, tid, idx, class)
	}
	s.h.clearOplog(tid, ts)
}

// drainAll drains every live magazine of this heap for tid.
func (s *slabHeap) drainAll(ts *threadState, tid int) {
	mags := ts.mags[s.magIdx]
	if mags == nil {
		return
	}
	for class := 1; class < len(s.classes); class++ {
		if mags[class].mask != 0 {
			s.magDrain(ts, tid, class, -1)
		} else {
			mags[class] = magSlot{}
		}
	}
}

// DrainMagazines returns every block thread tid privatized back to its
// slabs. Callers that want a minimal shared-state footprint (harness
// drains, graceful detach) use it; the hot path never does — the
// drain-time ledger audit and crash reclamation account for live
// magazines instead.
func (h *Heap) DrainMagazines(tid int) {
	ts := h.ts(tid)
	h.small.drainAll(ts, tid)
	h.large.drainAll(ts, tid)
}

// reclaimMagazines, recovery only: union every nonzero magazine mask of
// the crashed thread back into its slab's bitset, then retire the line.
// mask != 0 proves the slab was owned by the dead thread at the crash
// (see the invariants above), so the bitset write is single-writer. The
// union is idempotent with every crash window the protocol can leave:
// refill's pre-commit overlap re-sets bits that were never cleared, a
// completed drain's bits are re-set in place, and a committed pop's
// block is in neither set — which is exactly the pending allocation the
// opMagAlloc redo reports.
func (s *slabHeap) reclaimMagazines(ts *threadState, tid int) {
	for class := 1; class < len(s.classes); class++ {
		mw := s.magW(tid, class)
		mask := ts.cache.LoadFresh(mw + 1)
		if mask == 0 {
			continue
		}
		meta := ts.cache.LoadFresh(mw)
		idx := int(magMetaSlab(meta)) - 1
		word := magMetaWord(meta)
		if idx < 0 || magMetaClass(meta) != class {
			s.h.fail("%s heap: corrupt magazine line for thread %d class %d (meta %#x)",
				s.name, tid, class, meta)
		}
		if w0Owner(s.loadW0(ts, idx)) != uint16(tid+1) {
			s.h.fail("%s heap: magazine of thread %d class %d references slab %d it does not own",
				s.name, tid, class, idx)
		}
		wi := s.bitsetW(idx) + word
		ts.cache.Store(wi, ts.cache.Load(wi)|mask)
		ts.cache.Store(mw, 0)
		ts.cache.Store(mw+1, 0)
		ts.cache.FlushOpt(mw)
		ts.cache.Fence()
	}
}

// magExtra is one slab's live magazine window, as seen by the audit.
type magExtra struct {
	word int
	mask uint64
}

// magUnionMasks scans every thread's magazine lines fresh and returns
// slab -> privatized window. At most one magazine can reference a slab
// (a slab has one owner and one class), so a plain map suffices. Audit
// only; requires quiescence.
func (s *slabHeap) magUnionMasks(ts *threadState) map[int]magExtra {
	out := make(map[int]magExtra)
	for t := 0; t < s.h.cfg.NumThreads; t++ {
		for class := 1; class < len(s.classes); class++ {
			mw := s.magW(t, class)
			mask := ts.cache.LoadFresh(mw + 1)
			if mask == 0 {
				continue
			}
			meta := ts.cache.LoadFresh(mw)
			idx := int(magMetaSlab(meta)) - 1
			if prev, dup := out[idx]; dup {
				s.h.fail("%s heap: two magazines reference slab %d (masks %#x, %#x)",
					s.name, idx, prev.mask, mask)
			}
			out[idx] = magExtra{word: magMetaWord(meta), mask: mask}
		}
	}
	return out
}
