package core

import (
	"testing"
	"testing/quick"
)

func TestSmallClassCoversRange(t *testing.T) {
	for size := 1; size <= smallMax; size++ {
		c := smallClassOf(size)
		if c < 1 || c > numSmallClasses {
			t.Fatalf("smallClassOf(%d) = %d out of range", size, c)
		}
		if smallClassSizes[c] < size {
			t.Fatalf("smallClassOf(%d) = %d but class size %d < size", size, c, smallClassSizes[c])
		}
		if c > 1 && smallClassSizes[c-1] >= size {
			t.Fatalf("smallClassOf(%d) = %d not tight: class %d size %d also fits",
				size, c, c-1, smallClassSizes[c-1])
		}
	}
}

func TestLargeClassCoversRange(t *testing.T) {
	for size := smallMax + 1; size <= largeMax; size += 509 {
		c := largeClassOf(size)
		if c < 1 || c > numLargeClasses {
			t.Fatalf("largeClassOf(%d) = %d out of range", size, c)
		}
		if largeClassSizes[c] < size {
			t.Fatalf("largeClassOf(%d) gives class size %d < size", size, largeClassSizes[c])
		}
		if c > 1 && largeClassSizes[c-1] >= size {
			t.Fatalf("largeClassOf(%d) = %d not tight", size, c)
		}
	}
	if got := largeClassOf(largeMax); largeClassSizes[got] != largeMax {
		t.Fatalf("largeClassOf(max) = %d", got)
	}
}

func TestInternalFragmentationBound(t *testing.T) {
	// Waste must stay at or below 50% of the requested size for sizes
	// >= 8 (slab-class guarantee; classes are at most 1.5x apart).
	f := func(raw uint16) bool {
		size := int(raw%smallMax) + 8
		if size > smallMax {
			size = smallMax
		}
		got := smallClassSizes[smallClassOf(size)]
		return got >= size && got <= size*2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestClassSizesMonotone(t *testing.T) {
	for c := 2; c < len(smallClassSizes); c++ {
		if smallClassSizes[c] <= smallClassSizes[c-1] {
			t.Fatalf("small classes not increasing at %d", c)
		}
	}
	for c := 2; c < len(largeClassSizes); c++ {
		if largeClassSizes[c] <= largeClassSizes[c-1] {
			t.Fatalf("large classes not increasing at %d", c)
		}
	}
	if smallClassSizes[numSmallClasses] != smallMax {
		t.Fatalf("last small class %d != smallMax", smallClassSizes[numSmallClasses])
	}
	if largeClassSizes[numLargeClasses] != largeMax {
		t.Fatalf("last large class %d != largeMax", largeClassSizes[numLargeClasses])
	}
}

func TestLayoutDisjointAndAligned(t *testing.T) {
	cfg := testConfig()
	l := computeLayout(&cfg)
	// HWcc regions in order, no overlap.
	if !(l.SmallLenW < l.SmallFreeW && l.SmallFreeW < l.LargeLenW &&
		l.ReservBase < l.HelpBase && l.HelpBase < l.SmallHWBase &&
		l.SmallHWBase+cfg.MaxSmallSlabs <= l.LargeHWBase &&
		l.LargeHWBase+cfg.MaxLargeSlabs <= l.HWccWords) {
		t.Fatalf("HWcc layout overlaps: %+v", l)
	}
	// SWcc strides line-aligned.
	for _, s := range []int{l.SmallLocalStride, l.LargeLocalStride, l.SmallDescStride, l.LargeDescStride, l.HugeLocalStride} {
		if s%lineWords != 0 {
			t.Fatalf("stride %d not line aligned", s)
		}
	}
	if l.OplogBase%lineWords != 0 {
		t.Fatal("oplog base not line aligned")
	}
	// Data regions in order with a guard page.
	if l.SmallDataOff != uint64(cfg.PageSize) {
		t.Fatalf("guard page missing: small data at %d", l.SmallDataOff)
	}
	if !(l.SmallDataOff < l.LargeDataOff && l.LargeDataOff < l.HugeDataOff && l.HugeDataOff < l.DataBytes) {
		t.Fatalf("data layout out of order: %+v", l)
	}
	// Bitsets must cover the densest class.
	if l.SmallBitsetWords*64 < cfg.SmallSlabSize/smallMin {
		t.Fatal("small bitset too small")
	}
	if l.LargeBitsetWords*64 < cfg.LargeSlabSize/largeClassSizes[1] {
		t.Fatal("large bitset too small")
	}
}

func TestConfigValidation(t *testing.T) {
	bads := []func(*Config){
		func(c *Config) { c.NumThreads = 0 },
		func(c *Config) { c.NumThreads = 1000 },
		func(c *Config) { c.SmallSlabSize = 1000 },
		func(c *Config) { c.LargeSlabSize = 0 },
		func(c *Config) { c.MaxSmallSlabs = 0 },
		func(c *Config) { c.HugeRegionSize = 100 },
		func(c *Config) { c.NumReservations = 0 },
		func(c *Config) { c.DescsPerThread = 0 },
		func(c *Config) { c.NumHazards = -1 },
		func(c *Config) { c.UnsizedThreshold = 0 },
		func(c *Config) { c.PageSize = 3000 },
		func(c *Config) { c.SmallSlabSize = 512 },
		func(c *Config) { c.DescsPerThread = 1 << 20 },
	}
	for i, mutate := range bads {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
	cfg := DefaultConfig()
	if err := cfg.validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestOpPackUnpack(t *testing.T) {
	f := func(opRaw uint8, a uint32, b uint16, ver uint16) bool {
		op := int(opRaw) % 64
		w := packOp(op, a&opAMask, b, ver)
		gop, ga, gb, gver := unpackOp(w)
		return gop == op && ga == a&opAMask && gb == b && gver == ver
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	if opName(opExtend) != "extend" || opName(opExtend|opLargeBit) != "large.extend" {
		t.Fatalf("opName wrong: %q %q", opName(opExtend), opName(opExtend|opLargeBit))
	}
	if opName(opHugeReclaim) != "huge-reclaim" {
		t.Fatalf("opName(opHugeReclaim) = %q", opName(opHugeReclaim))
	}
}
