package core

// Hot-path microbenchmarks (DESIGN.md §7). These sit one layer above the
// memsim cache benchmarks: a full small-heap malloc/free pair through
// the SWcc protocol is the unit of work every figure-9 number is built
// from, so regressions here show up everywhere.

import (
	"testing"

	"cxlalloc/internal/atomicx"
	"cxlalloc/internal/memsim"
	"cxlalloc/internal/vas"
)

func benchHeap(b *testing.B, mode atomicx.Mode) *Heap {
	b.Helper()
	cfg := DefaultConfig()
	cfg.NumThreads = 2
	cfg.MaxSmallSlabs = 256
	cfg.MaxLargeSlabs = 16
	cfg.HugeRegionSize = 1 << 20
	cfg.NumReservations = 8
	cfg.DescsPerThread = 32
	cfg.NumHazards = 16
	cfg.Mode = mode
	dc, err := DeviceFor(cfg)
	if err != nil {
		b.Fatal(err)
	}
	dev := memsim.NewDevice(dc)
	h, err := NewHeap(cfg, dev)
	if err != nil {
		b.Fatal(err)
	}
	sp := vas.NewSpace(0, dev, cfg.PageSize)
	sp.SetHandler(func(tid int, s *vas.Space, page uint64) bool {
		return h.HandleFault(tid, s.Install, page)
	})
	for tid := 0; tid < cfg.NumThreads; tid++ {
		if err := h.AttachThread(tid, sp); err != nil {
			b.Fatal(err)
		}
	}
	return h
}

// BenchmarkSmallMallocFree is one thread-local 64 B allocate/free pair —
// the peak-throughput shape of fig9 threadtest — under each coherence
// model. The swcc/mcas variants pay the full SWcc cache protocol per
// metadata access; dram bypasses it.
func BenchmarkSmallMallocFree(b *testing.B) {
	for _, m := range []struct {
		name string
		mode atomicx.Mode
	}{
		{"dram", atomicx.ModeDRAM},
		{"swcc", atomicx.ModeSWFlush},
		{"mcas", atomicx.ModeMCAS},
	} {
		b.Run(m.name, func(b *testing.B) {
			h := benchHeap(b, m.mode)
			// Warm: fault in the first slab and its mappings.
			p, err := h.Alloc(0, 64)
			if err != nil {
				b.Fatal(err)
			}
			h.Free(0, p)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p, err := h.Alloc(0, 64)
				if err != nil {
					b.Fatal(err)
				}
				h.Free(0, p)
			}
		})
	}
}
