package core

import "cxlalloc/internal/atomicx"

// Huge heap (§3.1.2, Figure 5): allocations above 512 KiB are backed by
// individual memory mappings. A reservation array in HWcc memory grants
// threads exclusive permission to install mappings in coarse regions;
// each thread tracks its owned, free virtual address ranges in a
// volatile interval set (deterministically reconstructible on recovery);
// every allocation gets a huge descriptor linked into the owner's
// descriptor list; and a hazard-offset protocol decides when a freed
// mapping's resources are safe to reclaim (§3.3.2).
//
// SWcc access discipline: the paper treats all huge-heap SWcc data as
// uncachable — flush after every write, flush-and-fence before every
// read — because huge operations are rare and the data is single-writer.
// hugeLoad and hugeStore implement that discipline.

// hugeDesc word offsets within a descriptor.
const (
	hdNext   = 0 // next descriptor ID+1 (bits 0..31) | inUse (bit 32)
	hdOffset = 1 // allocation offset (bytes, data region)
	hdSize   = 2 // allocation size (bytes, page-rounded)
	hdFree   = 3 // free bit, written by the freeing thread
)

const hdInUseBit = uint64(1) << 32

// Bits 33..48 of hdNext hold a generation counter, bumped every time the
// descriptor is initialized for a new allocation and preserved by every
// other hdNext write. A free's oplog record carries the generation so
// recovery can distinguish "my free never marked the descriptor" from
// "my free completed and the descriptor was reclaimed and reused while
// my slot was dead" — without it, redoing the free would free the new
// owner's allocation (ABA across recovery). Traversals read the next
// link as uint32, so the extra bits are invisible to them.
const hdGenShift = 33

func hdGen(w0 uint64) uint16 { return uint16(w0 >> hdGenShift) }

func hdGenField(gen uint16) uint64 { return uint64(gen) << hdGenShift }

func (h *Heap) hugeLoad(ts *threadState, w int) uint64 {
	return ts.cache.LoadFresh(w)
}

func (h *Heap) hugeStore(ts *threadState, w int, v uint64) {
	ts.cache.Store(w, v)
	ts.cache.Flush(w)
	ts.cache.Fence()
}

// descID addressing: global descriptor ID = tid*DescsPerThread + slot.
func (h *Heap) descOwner(id int) int { return id / h.cfg.DescsPerThread }
func (h *Heap) descSlot(id int) int  { return id % h.cfg.DescsPerThread }

func (h *Heap) descW(id, word int) int {
	return h.lay.hugeDescW(&h.cfg, h.descOwner(id), h.descSlot(id)) + word
}

// hugeHeadW is thread tid's descriptor-list head word.
func (h *Heap) hugeHeadW(tid int) int { return h.lay.hugeLocalW(tid) }

// hazardW is thread tid's hazard slot i.
func (h *Heap) hazardW(tid, i int) int { return h.lay.hugeLocalW(tid) + 2 + i }

func (h *Heap) reservW(region int) int { return h.lay.ReservBase + region }

func (h *Heap) regionOff(region int) uint64 {
	return h.lay.HugeDataOff + uint64(region)*h.cfg.HugeRegionSize
}

func (h *Heap) regionOf(p Ptr) int {
	return int((p - h.lay.HugeDataOff) / h.cfg.HugeRegionSize)
}

// roundPage rounds size up to the page size.
func (h *Heap) roundPage(n uint64) uint64 {
	ps := uint64(h.cfg.PageSize)
	return (n + ps - 1) / ps * ps
}

// allocDescSlot pops a free descriptor slot from tid's volatile pool.
func (h *Heap) allocDescSlot(ts *threadState, tid int) (int, bool) {
	if ts.descFree == nil {
		// First use (or post-recovery): every slot not in use is free.
		h.rebuildDescPool(ts, tid)
	}
	n := len(ts.descFree)
	if n == 0 {
		return 0, false
	}
	slot := ts.descFree[n-1]
	ts.descFree = ts.descFree[:n-1]
	return tid*h.cfg.DescsPerThread + slot, true
}

func (h *Heap) freeDescSlot(ts *threadState, id int) {
	ts.descFree = append(ts.descFree, h.descSlot(id))
}

// rebuildDescPool rescans tid's descriptor pool for free slots.
func (h *Heap) rebuildDescPool(ts *threadState, tid int) {
	ts.descFree = ts.descFree[:0]
	for slot := h.cfg.DescsPerThread - 1; slot >= 0; slot-- {
		id := tid*h.cfg.DescsPerThread + slot
		if h.hugeLoad(ts, h.descW(id, hdNext))&hdInUseBit == 0 {
			ts.descFree = append(ts.descFree, slot)
		}
	}
}

// hugeAlloc allocates size bytes from the huge heap (§3.1.2).
func (h *Heap) hugeAlloc(ts *threadState, tid int, size uint64) (Ptr, error) {
	size = h.roundPage(size)
	if size > uint64(h.cfg.NumReservations)*h.cfg.HugeRegionSize {
		return 0, ErrTooLarge
	}
	for {
		off, ok := ts.hugeFree.Alloc(size)
		if !ok {
			if !h.claimRegions(ts, tid, size) {
				return 0, ErrOutOfMemory
			}
			continue
		}
		id, ok := h.allocDescSlot(ts, tid)
		if !ok {
			ts.hugeFree.Add(off, size)
			return 0, ErrOutOfMemory
		}
		h.writeOplog(tid, ts, opHugeAlloc, 0, uint16(id), 0)
		h.crashPoint(tid, "huge.alloc.post-oplog")
		// Initialize the descriptor with the free bit unset and the next
		// generation; it stays invisible (unlinked) until the head store
		// below.
		head := h.hugeLoad(ts, h.hugeHeadW(tid))
		gen := hdGen(h.hugeLoad(ts, h.descW(id, hdNext))) + 1
		h.hugeStore(ts, h.descW(id, hdOffset), off)
		h.hugeStore(ts, h.descW(id, hdSize), size)
		h.hugeStore(ts, h.descW(id, hdFree), 0)
		h.hugeStore(ts, h.descW(id, hdNext), uint64(uint32(head))|hdInUseBit|hdGenField(gen))
		h.crashPoint(tid, "huge.alloc.post-desc")
		// Publish the hazard offset before installing the mapping
		// (hazard rule 1, §3.3.2). Done before linking so a full hazard
		// list can roll back without touching shared-visible state.
		if !h.tryPublishHazard(ts, tid, off) {
			h.hugeStore(ts, h.descW(id, hdNext), hdGenField(gen))
			h.clearOplog(tid, ts)
			h.freeDescSlot(ts, id)
			ts.hugeFree.Add(off, size)
			return 0, ErrOutOfMemory
		}
		h.crashPoint(tid, "huge.alloc.post-hazard")
		h.hugeStore(ts, h.hugeHeadW(tid), uint64(id+1))
		h.crashPoint(tid, "huge.alloc.post-link")
		ts.space.Install(off, size)
		h.clearOplog(tid, ts)
		return off, nil
	}
}

// claimRegions claims enough adjacent reservation-array entries to serve
// an allocation of size bytes, adding every claimed region to tid's
// interval set. Partially successful claims are kept: a claimed region
// is usable capacity, never a leak.
func (h *Heap) claimRegions(ts *threadState, tid int, size uint64) bool {
	k := int((size + h.cfg.HugeRegionSize - 1) / h.cfg.HugeRegionSize)
	nr := h.cfg.NumReservations
	for start := 0; start+k <= nr; start++ {
		run := true
		for i := 0; i < k && run; i++ {
			run = atomicx.Payload(h.dcas.Load(tid, h.reservW(start+i))) == 0
		}
		if !run {
			continue
		}
		claimed := 0
		for i := 0; i < k; i++ {
			if h.claimRegion(ts, tid, start+i) {
				claimed++
			} else {
				break
			}
		}
		if claimed == k {
			return true
		}
		// Lost a race mid-run; the claimed prefix stays ours. Rescan.
		if claimed > 0 {
			return true // let the caller retry Alloc; it may now fit
		}
	}
	return false
}

// claimRegion claims one reservation entry via detectable CAS.
func (h *Heap) claimRegion(ts *threadState, tid, region int) bool {
	old := h.dcas.Load(tid, h.reservW(region))
	if atomicx.Payload(old) != 0 {
		return false
	}
	ver := ts.nextVer()
	h.writeOplog(tid, ts, opReserve, uint32(region), 0, ver)
	h.dcas.Begin(tid, ver)
	h.crashPoint(tid, "huge.reserve.pre-cas")
	if !h.dcas.CAS(tid, ver, h.reservW(region), old, uint32(tid+1)) {
		return false
	}
	h.crashPoint(tid, "huge.reserve.post-cas")
	ts.hugeFree.Add(h.regionOff(region), h.cfg.HugeRegionSize)
	h.clearOplog(tid, ts)
	return true
}

// findDesc locates the in-use descriptor with exactly offset off by
// walking the region owner's descriptor list (§3.1.2 "Deallocation").
func (h *Heap) findDesc(ts *threadState, owner int, off uint64) (int, bool) {
	cur := h.hugeLoad(ts, h.hugeHeadW(owner))
	for steps := 0; uint32(cur) != 0 && steps <= h.cfg.DescsPerThread; steps++ {
		id := int(uint32(cur)) - 1
		w0 := h.hugeLoad(ts, h.descW(id, hdNext))
		if w0&hdInUseBit != 0 && h.hugeLoad(ts, h.descW(id, hdOffset)) == off {
			return id, true
		}
		cur = w0
	}
	return 0, false
}

// hugeFreePtr frees the huge allocation at p from any thread in any
// process.
func (h *Heap) hugeFreePtr(ts *threadState, tid int, p Ptr) {
	region := h.regionOf(p)
	ownerWord := atomicx.Payload(h.dcas.Load(tid, h.reservW(region)))
	if ownerWord == 0 {
		h.fail("huge heap: free %#x in unreserved region %d", p, region)
	}
	owner := int(ownerWord) - 1
	id, ok := h.findDesc(ts, owner, p)
	if !ok {
		h.fail("huge heap: free %#x: no live descriptor (double free?)", p)
	}
	size := h.hugeLoad(ts, h.descW(id, hdSize))
	// The record carries the descriptor's generation: if the freeing
	// thread crashes mid-free and the descriptor is reclaimed and reused
	// before recovery runs, the redo must not touch the new incarnation.
	gen := hdGen(h.hugeLoad(ts, h.descW(id, hdNext)))
	h.writeOplog(tid, ts, opHugeFree, uint32(p/uint64(h.cfg.PageSize)), uint16(id), gen)
	h.crashPoint(tid, "huge.free.post-oplog")
	if h.hugeLoad(ts, h.descW(id, hdFree)) != 0 {
		h.fail("huge heap: double free of %#x", p)
	}
	// Setting the free bit needs no CAS: descriptors are never updated
	// concurrently in a correct program (§3.1.2).
	h.hugeStore(ts, h.descW(id, hdFree), 1)
	h.crashPoint(tid, "huge.free.post-bit")
	// Unmap our own process's mapping and retire our hazard (rule 2).
	ts.space.Unmap(p, size)
	h.removeHazard(ts, tid, p)
	h.crashPoint(tid, "huge.free.post-unmap")
	h.clearOplog(tid, ts)
	// Opportunistic cleanup; other processes clean up in Maintain.
	if owner == tid {
		h.hugeReclaim(ts, tid)
	}
}

// hugeUsableSize returns the page-rounded size of the allocation at p.
func (h *Heap) hugeUsableSize(ts *threadState, tid int, p Ptr) int {
	region := h.regionOf(p)
	ownerWord := atomicx.Payload(h.dcas.Load(tid, h.reservW(region)))
	if ownerWord == 0 {
		h.fail("huge heap: UsableSize(%#x) in unreserved region", p)
	}
	id, ok := h.findDesc(ts, int(ownerWord)-1, p)
	if !ok {
		h.fail("huge heap: UsableSize(%#x): no live descriptor", p)
	}
	return int(h.hugeLoad(ts, h.descW(id, hdSize)))
}

// --- hazard offsets (§3.3.2) ---

// tryPublishHazard records off in tid's hazard list (idempotently),
// keeping the mapping safe from reclamation while this process has it
// mapped. It reports false if the hazard list is full — the per-thread
// cap on concurrent huge mappings.
func (h *Heap) tryPublishHazard(ts *threadState, tid int, off uint64) bool {
	empty := -1
	for i := 0; i < h.cfg.NumHazards; i++ {
		v := h.hugeLoad(ts, h.hazardW(tid, i))
		if v == off {
			return true // already published
		}
		if v == 0 && empty < 0 {
			empty = i
		}
	}
	if empty < 0 {
		return false
	}
	h.hugeStore(ts, h.hazardW(tid, empty), off)
	return true
}

// removeHazard clears off from tid's hazard list if present.
func (h *Heap) removeHazard(ts *threadState, tid int, off uint64) {
	for i := 0; i < h.cfg.NumHazards; i++ {
		if h.hugeLoad(ts, h.hazardW(tid, i)) == off {
			h.hugeStore(ts, h.hazardW(tid, i), 0)
			return
		}
	}
}

// hazardPublished reports whether any thread holds a hazard for off
// (reclamation rule 3).
func (h *Heap) hazardPublished(ts *threadState, off uint64) bool {
	for t := 0; t < h.cfg.NumThreads; t++ {
		for i := 0; i < h.cfg.NumHazards; i++ {
			if h.hugeLoad(ts, h.hazardW(t, i)) == off {
				return true
			}
		}
	}
	return false
}

// Maintain performs the paper's asynchronous cleanup for thread tid:
// walk the hazard list retiring mappings whose allocation has been
// freed, then walk the descriptor list reclaiming freed descriptors with
// no published hazards. Benchmarks call it periodically; Free calls the
// reclaim half opportunistically.
func (h *Heap) Maintain(tid int) {
	ts := h.ts(tid)
	h.hazardSweep(ts, tid)
	h.hugeReclaim(ts, tid)
}

// hazardSweep retires tid's hazards whose allocations have been freed:
// unmap locally, then remove the hazard (rule 2's ordering).
func (h *Heap) hazardSweep(ts *threadState, tid int) {
	for i := 0; i < h.cfg.NumHazards; i++ {
		off := h.hugeLoad(ts, h.hazardW(tid, i))
		if off == 0 {
			continue
		}
		region := h.regionOf(off)
		ownerWord := atomicx.Payload(h.dcas.Load(tid, h.reservW(region)))
		if ownerWord == 0 {
			continue
		}
		id, ok := h.findDesc(ts, int(ownerWord)-1, off)
		if !ok || h.hugeLoad(ts, h.descW(id, hdFree)) == 0 {
			continue
		}
		size := h.hugeLoad(ts, h.descW(id, hdSize))
		h.writeOplog(tid, ts, opHugeUnmap, uint32(off/uint64(h.cfg.PageSize)), uint16(id), 0)
		h.crashPoint(tid, "huge.unmap.post-oplog")
		ts.space.Unmap(off, size)
		h.crashPoint(tid, "huge.unmap.post-unmap")
		h.hugeStore(ts, h.hazardW(tid, i), 0)
		h.clearOplog(tid, ts)
	}
}

// hugeReclaim reclaims tid's freed descriptors whose offsets have no
// published hazard: unlink, release the address range, free the slot.
func (h *Heap) hugeReclaim(ts *threadState, tid int) {
	prevW := h.hugeHeadW(tid)
	cur := h.hugeLoad(ts, prevW)
	for steps := 0; uint32(cur) != 0 && steps <= h.cfg.DescsPerThread; steps++ {
		id := int(uint32(cur)) - 1
		w0 := h.hugeLoad(ts, h.descW(id, hdNext))
		next := uint64(uint32(w0))
		if h.hugeLoad(ts, h.descW(id, hdFree)) == 0 {
			prevW = h.descW(id, hdNext)
			cur = next
			continue
		}
		off := h.hugeLoad(ts, h.descW(id, hdOffset))
		size := h.hugeLoad(ts, h.descW(id, hdSize))
		if h.hazardPublished(ts, off) {
			prevW = h.descW(id, hdNext)
			cur = next
			continue
		}
		h.writeOplog(tid, ts, opHugeReclaim, uint32(off/uint64(h.cfg.PageSize)), uint16(id), 0)
		h.crashPoint(tid, "huge.reclaim.post-oplog")
		// Unlink: the predecessor is either the list head word or a
		// descriptor's next word; preserve the predecessor's inUse bit
		// and generation (both live above the 32-bit next link).
		prev := h.hugeLoad(ts, prevW)
		h.hugeStore(ts, prevW, prev&^uint64(1<<32-1)|next)
		h.crashPoint(tid, "huge.reclaim.post-unlink")
		h.hugeStore(ts, h.descW(id, hdNext), hdGenField(hdGen(w0))) // clear inUse, keep gen
		h.crashPoint(tid, "huge.reclaim.post-clear")
		ts.hugeFree.Add(off, size)
		h.freeDescSlot(ts, id)
		h.clearOplog(tid, ts)
		cur = next
	}
}

// HandleFault is the heap side of the paper's signal handler (§3.3):
// given a faulting page, decide whether it lies within the heap and
// should be backed, installing the mapping if so. The facade registers
// it as each Space's fault handler.
func (h *Heap) HandleFault(tid int, install func(off, n uint64), page uint64) bool {
	ts := h.ts(tid)
	pageOff := page * uint64(h.cfg.PageSize)
	switch {
	case pageOff >= h.lay.SmallDataOff && pageOff < h.lay.LargeDataOff:
		// §3.3.1: valid iff the containing slab is below the heap length.
		idx := h.small.slabOf(pageOff)
		if uint32(idx) >= h.small.length(tid) {
			return false
		}
		install(h.small.slabData(idx), uint64(h.small.slabSize))
		return true
	case pageOff >= h.lay.LargeDataOff && pageOff < h.lay.HugeDataOff:
		idx := h.large.slabOf(pageOff)
		if uint32(idx) >= h.large.length(tid) {
			return false
		}
		install(h.large.slabData(idx), uint64(h.large.slabSize))
		return true
	case pageOff >= h.lay.HugeDataOff && pageOff < h.lay.DataBytes:
		// §3.3.2: walk the region owner's descriptor list; a live
		// allocation covering the page is mapped after publishing a
		// hazard offset (publish-before-map, rule 1).
		region := h.regionOf(pageOff)
		ownerWord := atomicx.Payload(h.dcas.Load(tid, h.reservW(region)))
		if ownerWord == 0 {
			return false
		}
		owner := int(ownerWord) - 1
		cur := h.hugeLoad(ts, h.hugeHeadW(owner))
		for steps := 0; uint32(cur) != 0 && steps <= h.cfg.DescsPerThread; steps++ {
			id := int(uint32(cur)) - 1
			w0 := h.hugeLoad(ts, h.descW(id, hdNext))
			off := h.hugeLoad(ts, h.descW(id, hdOffset))
			size := h.hugeLoad(ts, h.descW(id, hdSize))
			if w0&hdInUseBit != 0 && pageOff >= off && pageOff < off+size {
				if h.hugeLoad(ts, h.descW(id, hdFree)) != 0 {
					return false // use after free: let it segfault
				}
				if !h.tryPublishHazard(ts, tid, off) {
					return false // hazard list full: cannot map safely
				}
				install(off, size)
				return true
			}
			cur = w0
		}
		return false
	default:
		return false
	}
}
