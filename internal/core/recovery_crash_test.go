package core

import (
	"testing"

	"cxlalloc/internal/crash"
)

// Crash-during-recovery (§3.4.2): RecoverThread is itself instrumented
// with crash points, and a second RecoverThread call after a crash at
// any of them must converge to an invariant-clean heap. This holds
// because the slot stays dead until recovery completes, the oplog record
// is cleared only at the very end, and every redo handler is idempotent.

// crashDuringRecovery drives tid 0 into a crash mid-operation, then
// crashes the recovery itself at recoverPoint, then recovers again.
func crashDuringRecovery(t *testing.T, opPoint, recoverPoint string) {
	e, inj := crashEnv(t)
	inj.Arm(opPoint, 0, 0)
	var leftovers []Ptr
	if c := crash.Run(func() { leftovers = crashScenarios[opPoint](e) }); c == nil {
		t.Fatalf("scenario never reached %q", opPoint)
	}
	e.h.MarkCrashed(0)
	inj.Disarm()

	// First recovery attempt dies at recoverPoint.
	inj.Arm(recoverPoint, 0, 0)
	c := crash.Run(func() {
		if _, err := e.h.RecoverThread(0, e.spaces[0]); err != nil {
			t.Errorf("RecoverThread: %v", err)
		}
	})
	if c == nil {
		t.Fatalf("recovery never reached %q", recoverPoint)
	}
	if c.Point != recoverPoint {
		t.Fatalf("crashed at %q, want %q", c.Point, recoverPoint)
	}
	inj.Disarm()
	// The aborted recovery's cache must drain like any other crash.
	e.h.MarkCrashed(0)
	if e.h.Alive(0) {
		t.Fatal("slot alive after crash inside recovery")
	}

	// Live threads still are not blocked.
	p := e.alloc(1, 64)
	e.h.Free(1, p)

	// Second recovery converges.
	rep, err := e.h.RecoverThread(0, e.spaces[0])
	if err != nil {
		t.Fatalf("second RecoverThread: %v", err)
	}
	if rep.PendingAlloc != 0 {
		e.h.Free(0, rep.PendingAlloc)
	}
	for _, lp := range leftovers {
		e.h.Free(1, lp)
	}
	e.checkAll(1)
	if leaked := e.leakedSlabs(e.h.small); len(leaked) != 0 {
		t.Fatalf("slabs leaked across crash-during-recovery: %v", leaked)
	}

	// The twice-recovered thread is fully functional.
	var ps []Ptr
	for i := 0; i < 2*smallBlocks(e); i++ {
		ps = append(ps, e.alloc(0, smallMax))
	}
	for _, pp := range ps {
		e.h.Free(0, pp)
	}
	hp := e.alloc(0, largeMax+1)
	e.h.Free(0, hp)
	e.h.Maintain(0)
	e.h.Maintain(1)
	e.checkAll(0)
}

// TestRecoveryCrashIdempotent sweeps every recovery crash point against
// a representative set of in-flight operations (one per heap and per
// redo family with real work to redo).
func TestRecoveryCrashIdempotent(t *testing.T) {
	opPoints := []string{
		"small.alloc.post-take",      // pending allocation to re-detect
		"small.push-global.pre-cas",  // detectable-CAS redo
		"small.remote-free.post-cas", // remote-free completion
		"huge.alloc.post-link",       // huge descriptor + hazard redo
		"huge.free.post-oplog",       // huge free completion + unmap
	}
	for _, op := range opPoints {
		for _, rp := range RecoveryCrashPoints {
			t.Run(op+"/"+rp, func(t *testing.T) {
				crashDuringRecovery(t, op, rp)
			})
		}
	}
}

// TestRecoveryCrashTwice crashes recovery at two different stages in
// sequence; the third attempt must still converge.
func TestRecoveryCrashTwice(t *testing.T) {
	e, inj := crashEnv(t)
	inj.Arm("small.push-global.pre-cas", 0, 0)
	if c := crash.Run(func() { crashScenarios["small.push-global.pre-cas"](e) }); c == nil {
		t.Fatal("scenario never crashed")
	}
	e.h.MarkCrashed(0)
	inj.Disarm()

	for _, rp := range []string{"recover.pre-redo", "recover.post-rebuild-huge"} {
		inj.Arm(rp, 0, 0)
		if c := crash.Run(func() { e.h.RecoverThread(0, e.spaces[0]) }); c == nil {
			t.Fatalf("recovery never reached %q", rp)
		}
		inj.Disarm()
		e.h.MarkCrashed(0)
	}
	rep, err := e.h.RecoverThread(0, e.spaces[0])
	if err != nil {
		t.Fatalf("third RecoverThread: %v", err)
	}
	if rep.PendingAlloc != 0 {
		e.h.Free(0, rep.PendingAlloc)
	}
	if leaked := e.leakedSlabs(e.h.small); len(leaked) != 0 {
		t.Fatalf("slabs leaked: %v", leaked)
	}
	e.checkAll(0)
}

// TestRecoveryCrashIntoFreshProcess models the compound failure: a
// thread crashes, its process dies, and the restarted process's recovery
// itself crashes before converging on the second attempt.
func TestRecoveryCrashIntoFreshProcess(t *testing.T) {
	e, inj := crashEnv(t)
	inj.Arm("huge.alloc.post-link", 0, 0)
	if c := crash.Run(func() { crashScenarios["huge.alloc.post-link"](e) }); c == nil {
		t.Fatal("scenario never crashed")
	}
	e.h.MarkCrashed(0)
	inj.Disarm()

	// Recover into process 1's space (process 0 died); crash mid-way.
	inj.Arm("recover.post-redo", 0, 0)
	if c := crash.Run(func() { e.h.RecoverThread(0, e.spaces[1]) }); c == nil {
		t.Fatal("recovery never reached recover.post-redo")
	}
	inj.Disarm()
	e.h.MarkCrashed(0)

	rep, err := e.h.RecoverThread(0, e.spaces[1])
	if err != nil {
		t.Fatal(err)
	}
	if rep.PendingAlloc != 0 {
		e.h.Free(0, rep.PendingAlloc)
	}
	e.h.Maintain(0)
	e.checkAll(0)
}
