package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided %d times in 1000 draws", same)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(1)
	for _, n := range []int{1, 2, 7, 100} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntRange(t *testing.T) {
	r := New(2)
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		v := r.IntRange(5, 9)
		if v < 5 || v > 9 {
			t.Fatalf("IntRange(5,9) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("IntRange(5,9) hit %d distinct values, want 5", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestUniformity(t *testing.T) {
	// Chi-squared-ish sanity check over 16 buckets.
	r := New(7)
	const draws = 160000
	var buckets [16]int
	for i := 0; i < draws; i++ {
		buckets[r.Intn(16)]++
	}
	want := draws / 16
	for i, c := range buckets {
		if math.Abs(float64(c-want)) > float64(want)/10 {
			t.Fatalf("bucket %d count %d deviates >10%% from %d", i, c, want)
		}
	}
}

func TestMixIsInjectiveOnSample(t *testing.T) {
	seen := map[uint64]uint64{}
	for i := uint64(0); i < 100000; i++ {
		h := Mix(i)
		if prev, dup := seen[h]; dup {
			t.Fatalf("Mix collision: Mix(%d) == Mix(%d)", i, prev)
		}
		seen[h] = i
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		xs := make([]int, 50)
		for i := range xs {
			xs[i] = i
		}
		r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
		seen := make([]bool, 50)
		for _, x := range xs {
			if x < 0 || x >= 50 || seen[x] {
				return false
			}
			seen[x] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfBoundsAndSkew(t *testing.T) {
	r := New(9)
	const n = 1000
	z := NewZipf(r, n, 0.99)
	counts := make([]int, n)
	const draws = 200000
	for i := 0; i < draws; i++ {
		v := z.Next()
		if v >= n {
			t.Fatalf("zipf value %d out of range", v)
		}
		counts[v]++
	}
	// Item 0 must be by far the most popular; with theta=0.99 over 1000
	// items it should get roughly 1/zeta(1000, .99) ~ 12% of draws.
	if counts[0] < draws/20 {
		t.Fatalf("item 0 drew only %d/%d; distribution not skewed", counts[0], draws)
	}
	if counts[0] <= counts[n-1] {
		t.Fatal("item 0 not more popular than last item")
	}
	// Top-16 items should cover the majority of draws (hot set).
	top := 0
	for i := 0; i < 16; i++ {
		top += counts[i]
	}
	if top < draws/3 {
		t.Fatalf("top-16 cover %d/%d; zipf(0.99) should concentrate more", top, draws)
	}
}

func TestZipfScrambledSpreadsHotKeys(t *testing.T) {
	r := New(11)
	const n = 1 << 16
	z := NewZipf(r, n, 0.99)
	counts := map[uint64]int{}
	for i := 0; i < 100000; i++ {
		counts[z.NextScrambled()]++
	}
	// The hottest scrambled key should not be key 0 in general, and all
	// values must stay in range.
	maxKey, maxCount := uint64(0), 0
	for k, c := range counts {
		if k >= n {
			t.Fatalf("scrambled value %d out of range", k)
		}
		if c > maxCount {
			maxKey, maxCount = k, c
		}
	}
	if maxCount < 1000 {
		t.Fatalf("hottest key drew %d; skew lost in scrambling", maxCount)
	}
	_ = maxKey
}

func TestZipfDegenerateArgs(t *testing.T) {
	r := New(1)
	for _, bad := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf theta=%v did not panic", bad)
				}
			}()
			NewZipf(r, 10, bad)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewZipf n=0 did not panic")
			}
		}()
		NewZipf(r, 0, 0.99)
	}()
}
