package xrand

import "math"

// Zipf generates values in [0, n) following a zipfian distribution with
// the given theta (the paper and YCSB use theta = 0.99). It implements
// the rejection-free method of Gray et al. ("Quickly generating
// billion-record synthetic databases", SIGMOD '94), which is also what
// YCSB's ZipfianGenerator uses, so the skew of our synthetic key streams
// matches the paper's workloads.
//
// Zipf is not safe for concurrent use.
type Zipf struct {
	rng   *Rand
	items uint64
	theta float64
	alpha float64
	zetaN float64
	eta   float64
	zeta2 float64
}

// NewZipf returns a zipfian generator over [0, n) with skew theta.
// It panics if n == 0 or theta is not in (0, 1).
func NewZipf(rng *Rand, n uint64, theta float64) *Zipf {
	if n == 0 {
		panic("xrand: NewZipf with n == 0")
	}
	if theta <= 0 || theta >= 1 {
		panic("xrand: NewZipf theta must be in (0, 1)")
	}
	z := &Zipf{
		rng:   rng,
		items: n,
		theta: theta,
		zeta2: zetaStatic(2, theta),
		zetaN: zetaStatic(n, theta),
	}
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetaN)
	return z
}

// zetaStatic computes the generalized harmonic number sum_{i=1..n} 1/i^theta.
// For large n this is O(n) but it runs once per generator at setup.
func zetaStatic(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next returns the next zipfian value in [0, items). Smaller values are
// more popular.
func (z *Zipf) Next() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetaN
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	v := uint64(float64(z.items) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if v >= z.items {
		v = z.items - 1
	}
	return v
}

// NextScrambled returns a zipfian value whose popularity rank is
// scattered uniformly over the key space, like YCSB's
// ScrambledZipfianGenerator. Hot keys are therefore not clustered at low
// IDs, which would otherwise correlate with allocator layout.
func (z *Zipf) NextScrambled() uint64 {
	return Mix(z.Next()) % z.items
}
