// Package xrand provides small, fast, deterministic random number
// generators used by the workload generators and the allocator's
// randomized tests.
//
// The benchmark harness must be reproducible run-to-run (the paper fixes
// the amount of work per trial and reports low variance), so every
// generator here is seeded explicitly and never touches global state.
package xrand

// Rand is a SplitMix64 pseudo-random generator. It is not safe for
// concurrent use; each simulated thread owns its own Rand.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed. Two generators created with
// the same seed produce identical streams.
func New(seed uint64) *Rand {
	return &Rand{state: seed + 0x9e3779b97f4a7c15}
}

// Uint64 returns the next value in the stream.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// IntRange returns a uniform value in [lo, hi]. It panics if hi < lo.
func (r *Rand) IntRange(lo, hi int) int {
	if hi < lo {
		panic("xrand: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Mix hashes x with a strong 64-bit finalizer. It is used to scramble
// sequential key IDs into uniformly distributed keys (YCSB's "scrambled
// zipfian" trick) and to derive per-thread seeds from a base seed.
func Mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
