package recoverable

import (
	"testing"

	"cxlalloc/internal/alloc"
	"cxlalloc/internal/core"
	"cxlalloc/internal/crash"
	"cxlalloc/internal/memsim"
	"cxlalloc/internal/vas"
)

// newCXLQueueEnv builds a two-thread cxlalloc heap with a crash injector
// and a recoverable queue on top of it.
func newCXLQueueEnv(t *testing.T) (*core.Heap, *crash.Injector, []*vas.Space, *Queue) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.NumThreads = 2
	cfg.MaxSmallSlabs = 64
	cfg.MaxLargeSlabs = 8
	cfg.HugeRegionSize = 1 << 20
	cfg.NumReservations = 8
	cfg.DescsPerThread = 16
	cfg.NumHazards = 8
	cfg.CheckInvariants = true
	inj := crash.NewInjector()
	cfg.Crash = inj
	dc, err := core.DeviceFor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dev := memsim.NewDevice(dc)
	h, err := core.NewHeap(cfg, dev)
	if err != nil {
		t.Fatal(err)
	}
	spaces := make([]*vas.Space, cfg.NumThreads)
	for tid := 0; tid < cfg.NumThreads; tid++ {
		sp := vas.NewSpace(tid, dev, cfg.PageSize)
		sp.SetHandler(func(tid int, s *vas.Space, page uint64) bool {
			return h.HandleFault(tid, s.Install, page)
		})
		spaces[tid] = sp
		if err := h.AttachThread(tid, sp); err != nil {
			t.Fatal(err)
		}
	}
	return h, inj, spaces, NewQueue(alloc.NewCXL(h, "cxlalloc"))
}

// TestQueueDoubleFaultNoLeak is the application-level view of
// crash-during-recovery: an insert crashes inside the allocator, the
// first recovery attempt crashes too, and after the second recovery the
// application adopts the pending block — ending with exactly the right
// element count, no leak, and no double-insert.
func TestQueueDoubleFaultNoLeak(t *testing.T) {
	h, inj, spaces, q := newCXLQueueEnv(t)
	const before = 20
	for i := 0; i < before; i++ {
		if err := q.Insert(0, i, 64); err != nil {
			t.Fatal(err)
		}
	}

	// Fault 1: the allocator crashes after taking the block for element
	// `before`, before Insert could link it.
	inj.Arm("small.alloc.post-take", 0, 0)
	if c := crash.Run(func() { q.Insert(0, before, 64) }); c == nil {
		t.Fatal("insert never crashed")
	}
	h.MarkCrashed(0)
	inj.Disarm()

	// The other thread is not blocked while slot 0 is dead.
	for i := 0; i < 5; i++ {
		if err := q.Insert(1, 100+i, 64); err != nil {
			t.Fatal(err)
		}
	}

	// Fault 2: recovery of slot 0 crashes mid-way.
	inj.Arm("recover.post-redo", 0, 0)
	if c := crash.Run(func() { h.RecoverThread(0, spaces[0]) }); c == nil {
		t.Fatal("recovery never crashed")
	}
	inj.Disarm()
	h.MarkCrashed(0)

	// Second recovery converges and still reports the pending block.
	rep, err := h.RecoverThread(0, spaces[0])
	if err != nil {
		t.Fatal(err)
	}
	if rep.PendingAlloc == 0 {
		t.Fatal("pending allocation lost across the recovery crash")
	}
	// Memento-style adoption: the handoff completes the interrupted
	// insert instead of leaking the block.
	q.Adopt(0, rep.PendingAlloc)

	const after = 5
	for i := 0; i < after; i++ {
		if err := q.Insert(0, 200+i, 64); err != nil {
			t.Fatal(err)
		}
	}

	want := before + 1 + 5 + after // initial + adopted + other thread + tail
	if got := q.Len(); got != want {
		t.Fatalf("queue holds %d elements, want %d (leak or double-insert)", got, want)
	}
	if removed := q.RemoveAll(0); removed != want {
		t.Fatalf("RemoveAll freed %d, want %d", removed, want)
	}
	h.Maintain(0)
	h.Maintain(1)
	if err := h.CheckAll(0); err != nil {
		t.Fatal(err)
	}
}
