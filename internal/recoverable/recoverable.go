// Package recoverable provides the Memento-style recoverable data
// structures of the paper's Figure 7 experiment: a queue and a hash map
// whose elements are allocator objects, instrumented so the harness can
// crash threads mid-insert and compare recovery strategies —
// cxlalloc's non-blocking, leak-free recovery versus ralloc's choice
// between blocking garbage collection and leaking.
//
// Memento (Cho et al., PLDI '23) makes operations detectably
// recoverable; the part that interacts with the allocator is exactly
// what cxlalloc's recovery report provides: after a crash between
// taking a block and publishing it, the application learns the pending
// allocation and can adopt it (completing the insert) instead of
// leaking it.
package recoverable

import (
	"encoding/binary"
	"sync"
	"sync/atomic"

	"cxlalloc/internal/alloc"
	"cxlalloc/internal/kvstore"
)

// Structure is the harness-facing interface shared by the queue and map.
type Structure interface {
	// Insert allocates a size-byte object for element i and links it.
	Insert(tid, i, size int) error
	// Adopt links an already-allocated object (recovery handoff).
	Adopt(tid int, p alloc.Ptr)
	// RemoveAll unlinks and frees every element, returning the count.
	// Requires quiescence.
	RemoveAll(tid int) int
	// Live snapshots every linked allocation (GC roots). Requires
	// quiescence.
	Live() []alloc.Ptr
	// Len returns the current element count (approximate under
	// concurrency).
	Len() int
}

// Queue is a multi-producer queue of allocator objects. Link operations
// are short critical sections on a sharded mutex; Figure 7 measures
// allocator behaviour, and crashes are injected inside the allocator,
// never while a queue shard is held.
type Queue struct {
	a      alloc.Allocator
	shards [16]queueShard
}

type queueShard struct {
	mu    sync.Mutex
	items []alloc.Ptr
}

// NewQueue creates a queue over a.
func NewQueue(a alloc.Allocator) *Queue { return &Queue{a: a} }

func (q *Queue) Insert(tid, i, size int) error {
	p, err := q.a.Alloc(tid, size)
	if err != nil {
		return err
	}
	b := q.a.Bytes(tid, p, size)
	b[0] = byte(i)
	q.Adopt(tid, p)
	return nil
}

func (q *Queue) Adopt(tid int, p alloc.Ptr) {
	sh := &q.shards[tid%len(q.shards)]
	sh.mu.Lock()
	sh.items = append(sh.items, p)
	sh.mu.Unlock()
}

func (q *Queue) RemoveAll(tid int) int {
	n := 0
	for s := range q.shards {
		sh := &q.shards[s]
		sh.mu.Lock()
		items := sh.items
		sh.items = nil
		sh.mu.Unlock()
		for _, p := range items {
			q.a.Free(tid, p)
			n++
		}
	}
	return n
}

func (q *Queue) Live() []alloc.Ptr {
	var out []alloc.Ptr
	for s := range q.shards {
		sh := &q.shards[s]
		sh.mu.Lock()
		out = append(out, sh.items...)
		sh.mu.Unlock()
	}
	return out
}

func (q *Queue) Len() int {
	n := 0
	for s := range q.shards {
		sh := &q.shards[s]
		sh.mu.Lock()
		n += len(sh.items)
		sh.mu.Unlock()
	}
	return n
}

// Map is the hash-map structure: elements are keyed by index in the
// lock-free kvstore index.
type Map struct {
	s        *kvstore.Store
	nThreads int
	maxIdx   atomic.Int64
}

// NewMap creates a map over a with nBuckets index buckets.
func NewMap(a alloc.Allocator, nBuckets, nThreads int) *Map {
	m := &Map{s: kvstore.New(a, nBuckets, nThreads), nThreads: nThreads}
	m.maxIdx.Store(-1)
	return m
}

func mapKey(i int) []byte {
	var k [8]byte
	binary.LittleEndian.PutUint64(k[:], uint64(i))
	return k[:]
}

func (m *Map) Insert(tid, i, size int) error {
	if size < 9 {
		size = 9 // key (8 B) plus at least one value byte
	}
	val := make([]byte, size-8)
	val[0] = byte(i)
	for {
		cur := m.maxIdx.Load()
		if int64(i) <= cur || m.maxIdx.CompareAndSwap(cur, int64(i)) {
			break
		}
	}
	return m.s.Put(tid, mapKey(i), val)
}

// Adopt links a recovered pending allocation. The map cannot know which
// key the crashed insert was for (that record died with the thread), so
// it frees the orphan — still leak-free, matching what a Memento map
// does when its own redo record says the operation never linked.
func (m *Map) Adopt(tid int, p alloc.Ptr) {
	// The kvstore owns its allocations; an unlinked one is returned to
	// the allocator.
	m.free(tid, p)
}

func (m *Map) free(tid int, p alloc.Ptr) {
	// Map.s.mem is not exported; free through a tiny interface instead.
	m.s.FreeOrphan(tid, p)
}

func (m *Map) RemoveAll(tid int) int {
	count := 0
	for i := int64(0); i <= m.maxIdx.Load(); i++ {
		if m.s.Delete(tid, mapKey(int(i))) {
			count++
		}
	}
	m.s.Drain(m.nThreads)
	return count
}

func (m *Map) Live() []alloc.Ptr { return m.s.LivePtrs() }

func (m *Map) Len() int { return len(m.s.LivePtrs()) }
