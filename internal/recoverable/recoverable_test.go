package recoverable

import (
	"sync"
	"testing"

	"cxlalloc/internal/baselines/mim"
	"cxlalloc/internal/xrand"
)

func TestQueueInsertRemove(t *testing.T) {
	a := mim.New(64<<20, 4)
	q := NewQueue(a)
	rng := xrand.New(1)
	const n = 1000
	for i := 0; i < n; i++ {
		if err := q.Insert(i%4, i, rng.IntRange(8, 1024)); err != nil {
			t.Fatal(err)
		}
	}
	if q.Len() != n {
		t.Fatalf("Len = %d", q.Len())
	}
	if got := len(q.Live()); got != n {
		t.Fatalf("Live = %d", got)
	}
	if removed := q.RemoveAll(0); removed != n {
		t.Fatalf("RemoveAll = %d", removed)
	}
	if q.Len() != 0 {
		t.Fatal("queue not empty")
	}
}

func TestQueueAdopt(t *testing.T) {
	a := mim.New(4<<20, 1)
	q := NewQueue(a)
	p, _ := a.Alloc(0, 64)
	q.Adopt(0, p)
	if q.Len() != 1 {
		t.Fatal("adopted element not linked")
	}
	if q.RemoveAll(0) != 1 {
		t.Fatal("adopted element not removable")
	}
}

func TestMapInsertRemove(t *testing.T) {
	a := mim.New(64<<20, 4)
	m := NewMap(a, 1024, 4)
	rng := xrand.New(2)
	const n = 1000
	for i := 0; i < n; i++ {
		if err := m.Insert(i%4, i, rng.IntRange(8, 1024)); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Len(); got != n {
		t.Fatalf("Len = %d", got)
	}
	if removed := m.RemoveAll(0); removed != n {
		t.Fatalf("RemoveAll = %d", removed)
	}
	if m.Len() != 0 {
		t.Fatal("map not empty")
	}
}

func TestMapAdoptFreesOrphan(t *testing.T) {
	a := mim.New(4<<20, 1)
	m := NewMap(a, 64, 1)
	p, _ := a.Alloc(0, 64)
	base := a.Footprint().PSS()
	m.Adopt(0, p) // freed back, not linked
	if m.Len() != 0 {
		t.Fatal("orphan linked into map")
	}
	// Reallocating must reuse the freed block.
	p2, _ := a.Alloc(0, 64)
	if p2 != p {
		t.Fatalf("orphan not freed: %#x vs %#x", p, p2)
	}
	_ = base
}

func TestConcurrentInserts(t *testing.T) {
	a := mim.New(128<<20, 8)
	for name, s := range map[string]Structure{
		"queue": NewQueue(a),
		"map":   NewMap(a, 4096, 8),
	} {
		t.Run(name, func(t *testing.T) {
			const threads = 4
			const per = 500
			var wg sync.WaitGroup
			for tid := 0; tid < threads; tid++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					rng := xrand.New(uint64(tid))
					for i := 0; i < per; i++ {
						idx := tid*per + i
						if err := s.Insert(tid, idx, rng.IntRange(9, 1024)); err != nil {
							t.Errorf("insert %d: %v", idx, err)
							return
						}
					}
				}(tid)
			}
			wg.Wait()
			if got := s.Len(); got != threads*per {
				t.Fatalf("Len = %d, want %d", got, threads*per)
			}
			if got := s.RemoveAll(0); got != threads*per {
				t.Fatalf("RemoveAll = %d", got)
			}
		})
	}
}
