// Package bitword implements bitset operations over []uint64 words.
//
// cxlalloc's per-slab free bitsets (SWccDesc.free in the paper's Figure 3)
// live in simulated SWcc device memory as raw 64-bit words, accessed
// through a software-coherence cache. This package contains the pure
// word-level logic — find-first-set, set, clear, population count — so it
// can be property-tested independently of the memory simulator.
package bitword

import "math/bits"

// WordsFor returns the number of 64-bit words needed to hold n bits.
func WordsFor(n int) int {
	return (n + 63) / 64
}

// Get reports whether bit i is set in words.
func Get(words []uint64, i int) bool {
	return words[i/64]&(1<<(uint(i)%64)) != 0
}

// Set sets bit i in words.
func Set(words []uint64, i int) {
	words[i/64] |= 1 << (uint(i) % 64)
}

// Clear clears bit i in words.
func Clear(words []uint64, i int) {
	words[i/64] &^= 1 << (uint(i) % 64)
}

// FirstSet returns the index of the lowest set bit among the first n bits
// of words, or -1 if none is set.
func FirstSet(words []uint64, n int) int {
	full := n / 64
	for w := 0; w < full; w++ {
		if words[w] != 0 {
			return w*64 + bits.TrailingZeros64(words[w])
		}
	}
	if rem := n % 64; rem != 0 {
		mask := (uint64(1) << uint(rem)) - 1
		if v := words[full] & mask; v != 0 {
			return full*64 + bits.TrailingZeros64(v)
		}
	}
	return -1
}

// Count returns the number of set bits among the first n bits of words.
func Count(words []uint64, n int) int {
	full := n / 64
	c := 0
	for w := 0; w < full; w++ {
		c += bits.OnesCount64(words[w])
	}
	if rem := n % 64; rem != 0 {
		mask := (uint64(1) << uint(rem)) - 1
		c += bits.OnesCount64(words[full] & mask)
	}
	return c
}

// FillMask returns the word value for word index w of a bitset whose
// first n bits are all set: all-ones for fully covered words, a partial
// mask for the boundary word, zero past the end.
func FillMask(n, w int) uint64 {
	lo := w * 64
	if n <= lo {
		return 0
	}
	if n >= lo+64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(n-lo)) - 1
}
