package bitword

import (
	"testing"
	"testing/quick"

	"cxlalloc/internal/xrand"
)

func TestWordsFor(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 1}, {63, 1}, {64, 1}, {65, 2}, {128, 2}, {129, 3}, {4096, 64},
	}
	for _, c := range cases {
		if got := WordsFor(c.n); got != c.want {
			t.Errorf("WordsFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestSetClearGet(t *testing.T) {
	const n = 200
	words := make([]uint64, WordsFor(n))
	for i := 0; i < n; i++ {
		if Get(words, i) {
			t.Fatalf("bit %d set in zeroed bitset", i)
		}
	}
	for i := 0; i < n; i += 3 {
		Set(words, i)
	}
	for i := 0; i < n; i++ {
		want := i%3 == 0
		if Get(words, i) != want {
			t.Fatalf("bit %d: got %v, want %v", i, Get(words, i), want)
		}
	}
	for i := 0; i < n; i += 6 {
		Clear(words, i)
	}
	for i := 0; i < n; i++ {
		want := i%3 == 0 && i%6 != 0
		if Get(words, i) != want {
			t.Fatalf("after clear, bit %d: got %v, want %v", i, Get(words, i), want)
		}
	}
}

func TestFirstSetBoundaries(t *testing.T) {
	words := make([]uint64, 2)
	if got := FirstSet(words, 128); got != -1 {
		t.Fatalf("FirstSet of empty = %d, want -1", got)
	}
	Set(words, 127)
	if got := FirstSet(words, 128); got != 127 {
		t.Fatalf("FirstSet = %d, want 127", got)
	}
	// Bit outside the logical length must be ignored.
	if got := FirstSet(words, 127); got != -1 {
		t.Fatalf("FirstSet with n=127 = %d, want -1 (bit 127 out of range)", got)
	}
	Set(words, 64)
	if got := FirstSet(words, 128); got != 64 {
		t.Fatalf("FirstSet = %d, want 64", got)
	}
	Set(words, 3)
	if got := FirstSet(words, 128); got != 3 {
		t.Fatalf("FirstSet = %d, want 3", got)
	}
}

func TestCountPartialWord(t *testing.T) {
	words := make([]uint64, 2)
	for i := 0; i < 128; i++ {
		Set(words, i)
	}
	for n := 0; n <= 128; n++ {
		if got := Count(words, n); got != n {
			t.Fatalf("Count(full, %d) = %d, want %d", n, got, n)
		}
	}
}

func TestFillMask(t *testing.T) {
	// A bitset initialized word-by-word from FillMask must have exactly
	// its first n bits set.
	for _, n := range []int{0, 1, 7, 63, 64, 65, 100, 128, 130, 511, 512} {
		nw := WordsFor(n)
		words := make([]uint64, nw+1)
		for w := range words {
			words[w] = FillMask(n, w)
		}
		if got := Count(words, len(words)*64); got != n {
			t.Fatalf("FillMask n=%d: popcount %d", n, got)
		}
		for i := 0; i < len(words)*64; i++ {
			if Get(words, i) != (i < n) {
				t.Fatalf("FillMask n=%d: bit %d = %v", n, i, Get(words, i))
			}
		}
	}
}

// Property: FirstSet agrees with a naive linear scan, and Count agrees
// with counting Get over all positions, for random bit patterns.
func TestQuickFirstSetCount(t *testing.T) {
	f := func(seed uint64, nBits uint16) bool {
		n := int(nBits%512) + 1
		words := make([]uint64, WordsFor(n))
		rng := xrand.New(seed)
		for i := 0; i < n; i++ {
			if rng.Uint64()%4 == 0 {
				Set(words, i)
			}
		}
		wantFirst := -1
		wantCount := 0
		for i := 0; i < n; i++ {
			if Get(words, i) {
				wantCount++
				if wantFirst == -1 {
					wantFirst = i
				}
			}
		}
		return FirstSet(words, n) == wantFirst && Count(words, n) == wantCount
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: set-then-clear round-trips to the original bitset.
func TestQuickSetClearRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		const n = 256
		words := make([]uint64, WordsFor(n))
		rng := xrand.New(seed)
		var idx []int
		for i := 0; i < 50; i++ {
			j := rng.Intn(n)
			if !Get(words, j) {
				Set(words, j)
				idx = append(idx, j)
			}
		}
		for _, j := range idx {
			Clear(words, j)
		}
		return Count(words, n) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
