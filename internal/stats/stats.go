// Package stats provides the summary statistics the benchmark harness
// reports: mean and standard deviation across trials (the paper runs 10
// trials with error bars) and latency percentiles (Figure 11 reports
// p50/p90/p99/p99.9).
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Summary holds the mean and standard deviation of a set of trials.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary over xs. An empty slice yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		varSum := 0.0
		for _, x := range xs {
			d := x - s.Mean
			varSum += d * d
		}
		s.Stddev = math.Sqrt(varSum / float64(len(xs)-1))
	}
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("%.3g ± %.2g (n=%d)", s.Mean, s.Stddev, s.N)
}

// Percentiles holds the latency percentiles reported in Figure 11.
type Percentiles struct {
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
	P999  time.Duration
	Count int
}

// LatencyPercentiles computes p50/p90/p99/p99.9 over samples. The input
// slice is sorted in place.
func LatencyPercentiles(samples []time.Duration) Percentiles {
	if len(samples) == 0 {
		return Percentiles{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	at := func(q float64) time.Duration {
		i := int(q * float64(len(samples)-1))
		return samples[i]
	}
	return Percentiles{
		P50:   at(0.50),
		P90:   at(0.90),
		P99:   at(0.99),
		P999:  at(0.999),
		Count: len(samples),
	}
}

func (p Percentiles) String() string {
	return fmt.Sprintf("p50=%v p90=%v p99=%v p99.9=%v (n=%d)",
		p.P50, p.P90, p.P99, p.P999, p.Count)
}

// Throughput converts an operation count and elapsed time into ops/sec.
func Throughput(ops int, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(ops) / elapsed.Seconds()
}
