package stats

import (
	"math"
	"testing"
	"time"
)

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Fatalf("mean = %v (n=%d), want 5 (n=8)", s.Mean, s.N)
	}
	// Sample stddev of this classic sequence is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.Stddev-want) > 1e-12 {
		t.Fatalf("stddev = %v, want %v", s.Stddev, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
}

func TestSummarizeEdge(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	s := Summarize([]float64{3})
	if s.N != 1 || s.Mean != 3 || s.Stddev != 0 {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestLatencyPercentiles(t *testing.T) {
	var samples []time.Duration
	for i := 1; i <= 1000; i++ {
		samples = append(samples, time.Duration(i)*time.Microsecond)
	}
	p := LatencyPercentiles(samples)
	if p.P50 < 490*time.Microsecond || p.P50 > 510*time.Microsecond {
		t.Fatalf("p50 = %v", p.P50)
	}
	if p.P99 < 985*time.Microsecond || p.P99 > 995*time.Microsecond {
		t.Fatalf("p99 = %v", p.P99)
	}
	if p.P999 < p.P99 || p.P99 < p.P90 || p.P90 < p.P50 {
		t.Fatalf("percentiles not monotone: %+v", p)
	}
	if p.Count != 1000 {
		t.Fatalf("count = %d", p.Count)
	}
}

func TestLatencyPercentilesUnsortedInput(t *testing.T) {
	samples := []time.Duration{5, 1, 4, 2, 3}
	p := LatencyPercentiles(samples)
	if p.P50 != 3 {
		t.Fatalf("p50 = %v, want 3", p.P50)
	}
}

func TestLatencyPercentilesEmpty(t *testing.T) {
	if p := LatencyPercentiles(nil); p.Count != 0 || p.P999 != 0 {
		t.Fatalf("empty percentiles = %+v", p)
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(1000, time.Second); got != 1000 {
		t.Fatalf("Throughput = %v", got)
	}
	if got := Throughput(500, 2*time.Second); got != 250 {
		t.Fatalf("Throughput = %v", got)
	}
	if got := Throughput(10, 0); got != 0 {
		t.Fatalf("Throughput with zero elapsed = %v", got)
	}
}
