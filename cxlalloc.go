// Package cxlalloc is a Go reproduction of "Cxlalloc: Safe and Efficient
// Memory Allocation for a CXL Pod" (Ni, Sun, Zhu, Witchel — ASPLOS 2026):
// a user-space memory allocator for a group of hosts sharing
// CXL-attached memory at cacheline granularity.
//
// The allocator addresses the three challenges the paper identifies:
//
//   - Limited inter-host hardware cache coherence (HWcc): metadata is
//     partitioned into a minimal HWcc region (one 8-byte word per slab
//     plus constants) synchronized with CAS — or with a memory-based
//     CAS (mCAS) served by simulated near-memory-processing logic when
//     the pod has no HWcc at all — and a larger SWcc region kept
//     coherent in software with an explicit flush/fence protocol.
//
//   - Cross-process sharing: allocations are addressed by offset
//     pointers that name the same memory in every process (spatial
//     pointer consistency), and a simulated SIGSEGV handler installs
//     missing memory mappings on demand so a pointer minted in one
//     process can immediately be dereferenced in any other (temporal
//     pointer consistency). Huge allocations are reclaimed safely across
//     processes with a hazard-offset protocol.
//
//   - Partial failure: all multi-writer metadata is lock-free, every
//     operation records an 8-byte redo entry before its first effect,
//     and detectable CAS makes in-flight updates recoverable, so a
//     thread crash never blocks live threads and recovery is
//     non-blocking and leak-free.
//
// Because this is a simulation-backed reproduction, the "CXL device" is
// an in-process arena (internal/memsim) with per-thread write-back
// caches over the SWcc region, simulated per-process page tables
// (internal/vas), and an NMP mCAS unit (internal/nmp). The allocator
// code is identical across coherence models; select one with
// Config.Mode.
//
// # Quick start
//
//	pod, _ := cxlalloc.NewPod(cxlalloc.DefaultConfig())
//	proc := pod.NewProcess()
//	th, _ := proc.AttachThread()
//	p, _ := th.Alloc(128)
//	copy(th.Bytes(p, 5), "hello")
//	th.Free(p)
//
// Multiple Processes share the pod's memory: a Ptr from one process's
// thread is valid in every other.
package cxlalloc

import (
	"fmt"
	"sync"

	"cxlalloc/internal/core"
	"cxlalloc/internal/crash"
	"cxlalloc/internal/memsim"
	"cxlalloc/internal/vas"
)

// Ptr is an offset pointer into the pod's shared data region. Ptr 0 is
// nil. Ptrs are valid in every process of the pod (PC-S).
type Ptr = core.Ptr

// Config parameterizes a pod; see core.Config for every knob.
type Config = core.Config

// Footprint is the pod's memory accounting (HWcc/metadata/data bytes).
type Footprint = core.Footprint

// RecoveryReport describes what thread recovery found and redid.
type RecoveryReport = core.RecoveryReport

// Crashed is returned by Thread.Run when an injected crash fired.
type Crashed = crash.Crashed

// Re-exported sentinel errors.
var (
	ErrOutOfMemory = core.ErrOutOfMemory
	ErrTooLarge    = core.ErrTooLarge
	// ErrNotCrashed is returned by Process.Recover and Process.Restart
	// when the target is alive (never crashed, or already recovered).
	ErrNotCrashed = core.ErrNotCrashed
)

// DefaultConfig returns a moderate configuration suitable for examples
// and tests.
func DefaultConfig() Config { return core.DefaultConfig() }

// Pod is one simulated CXL pod: a shared memory device plus the heap
// metadata living in it. All processes and threads of the pod share one
// Pod value.
type Pod struct {
	dev  *memsim.Device
	heap *core.Heap

	mu       sync.Mutex
	nextProc int
	tidOwner []*Process // per thread slot: owning process, nil = free
}

// NewPod creates a pod with a zeroed device. Zeroed memory is a valid
// heap, so the pod is immediately usable by any number of processes.
func NewPod(cfg Config) (*Pod, error) {
	dc, err := core.DeviceFor(cfg)
	if err != nil {
		return nil, err
	}
	dev := memsim.NewDevice(dc)
	heap, err := core.NewHeap(cfg, dev)
	if err != nil {
		return nil, err
	}
	return &Pod{dev: dev, heap: heap, tidOwner: make([]*Process, cfg.NumThreads)}, nil
}

// Heap exposes the underlying allocator for benchmarks and tests.
func (pod *Pod) Heap() *core.Heap { return pod.heap }

// Device exposes the underlying simulated device.
func (pod *Pod) Device() *memsim.Device { return pod.dev }

// Process is one simulated OS process: its own virtual address space
// over the pod's shared memory, with the cxlalloc SIGSEGV handler
// installed (§3.3).
type Process struct {
	pod   *Pod
	space *vas.Space
	dead  bool // guarded by pod.mu; set by Pod.KillProcess
}

// NewProcess attaches a new process to the pod.
func (pod *Pod) NewProcess() *Process {
	pod.mu.Lock()
	defer pod.mu.Unlock()
	return pod.newProcessLocked()
}

func (pod *Pod) newProcessLocked() *Process {
	id := pod.nextProc
	pod.nextProc++
	sp := vas.NewSpace(id, pod.dev, pod.heap.Config().PageSize)
	sp.SetHandler(func(tid int, s *vas.Space, page uint64) bool {
		return pod.heap.HandleFault(tid, s.Install, page)
	})
	return &Process{pod: pod, space: sp}
}

// ID returns the process identifier.
func (p *Process) ID() int { return p.space.ID() }

// Space exposes the process's address space (tests, examples).
func (p *Process) Space() *vas.Space { return p.space }

// FaultStats returns how many on-demand mapping installs this process's
// signal handler performed.
func (p *Process) FaultStats() vas.Stats { return p.space.Stats() }

// Thread is one simulated thread, pinned to a thread slot (the paper
// pins threads to cores). A Thread is NOT safe for concurrent use; give
// each goroutine its own Thread.
type Thread struct {
	proc *Process
	tid  int
}

// AttachThread claims the lowest free thread slot in the pod for this
// process.
func (p *Process) AttachThread() (*Thread, error) {
	p.pod.mu.Lock()
	defer p.pod.mu.Unlock()
	if p.dead {
		return nil, fmt.Errorf("cxlalloc: process %d is dead", p.space.ID())
	}
	for tid, owner := range p.pod.tidOwner {
		if owner == nil {
			if err := p.pod.heap.AttachThread(tid, p.space); err != nil {
				return nil, err
			}
			p.pod.tidOwner[tid] = p
			return &Thread{proc: p, tid: tid}, nil
		}
	}
	return nil, fmt.Errorf("cxlalloc: all %d thread slots in use", len(p.pod.tidOwner))
}

// AttachThreadID claims a specific thread slot.
func (p *Process) AttachThreadID(tid int) (*Thread, error) {
	p.pod.mu.Lock()
	defer p.pod.mu.Unlock()
	if p.dead {
		return nil, fmt.Errorf("cxlalloc: process %d is dead", p.space.ID())
	}
	if tid < 0 || tid >= len(p.pod.tidOwner) {
		return nil, fmt.Errorf("cxlalloc: thread ID %d out of range", tid)
	}
	if p.pod.tidOwner[tid] != nil {
		return nil, fmt.Errorf("cxlalloc: thread slot %d already in use", tid)
	}
	if err := p.pod.heap.AttachThread(tid, p.space); err != nil {
		return nil, err
	}
	p.pod.tidOwner[tid] = p
	return &Thread{proc: p, tid: tid}, nil
}

// ID returns the thread slot index.
func (t *Thread) ID() int { return t.tid }

// Process returns the owning process.
func (t *Thread) Process() *Process { return t.proc }

// Alloc allocates size bytes of shared memory.
func (t *Thread) Alloc(size int) (Ptr, error) {
	return t.proc.pod.heap.Alloc(t.tid, size)
}

// Free releases an allocation made by any thread in any process.
func (t *Thread) Free(p Ptr) {
	t.proc.pod.heap.Free(t.tid, p)
}

// Bytes returns the allocation's bytes as seen by this thread's process,
// installing mappings on demand (PC-T). n must not exceed the usable
// size.
func (t *Thread) Bytes(p Ptr, n int) []byte {
	return t.proc.pod.heap.Bytes(t.tid, p, n)
}

// UsableSize reports the usable byte count of the allocation at p.
func (t *Thread) UsableSize(p Ptr) int {
	return t.proc.pod.heap.UsableSize(t.tid, p)
}

// Maintain runs the asynchronous huge-heap cleanup for this thread
// (hazard sweep + descriptor reclamation, §3.3.2). Long-running threads
// should call it occasionally.
func (t *Thread) Maintain() {
	t.proc.pod.heap.Maintain(t.tid)
}

// Footprint returns the pod's memory accounting as seen by this thread.
func (t *Thread) Footprint() Footprint {
	return t.proc.pod.heap.Footprint(t.tid)
}

// Run executes f; if an injected crash point fires (Config.Crash), the
// panic is caught, the thread slot is marked crashed exactly as the
// crash left it, and the Crashed value is returned. The Thread must not
// be used again; recover the slot with Process.Recover.
func (t *Thread) Run(f func()) *Crashed {
	c := crash.Run(f)
	if c != nil {
		t.proc.pod.heap.MarkCrashed(t.tid)
	}
	return c
}

// Kill marks the thread as crashed immediately (outside any operation).
func (t *Thread) Kill() {
	t.proc.pod.heap.MarkCrashed(t.tid)
}

// Recover runs the non-blocking recovery protocol (§3.4.2) on a crashed
// thread slot, rebinding it to this process, and returns a fresh Thread
// plus the recovery report. Recovering a slot that is alive — never
// crashed, or already recovered — fails with ErrNotCrashed.
func (p *Process) Recover(tid int) (*Thread, RecoveryReport, error) {
	p.pod.mu.Lock()
	if p.dead {
		p.pod.mu.Unlock()
		return nil, RecoveryReport{}, fmt.Errorf("cxlalloc: process %d is dead", p.space.ID())
	}
	p.pod.mu.Unlock()
	rep, err := p.pod.heap.RecoverThread(tid, p.space)
	if err != nil {
		return nil, rep, err
	}
	p.pod.mu.Lock()
	p.pod.tidOwner[tid] = p
	p.pod.mu.Unlock()
	return &Thread{proc: p, tid: tid}, rep, nil
}

// Dead reports whether the process was killed by Pod.KillProcess.
func (p *Process) Dead() bool {
	p.pod.mu.Lock()
	defer p.pod.mu.Unlock()
	return p.dead
}

// TIDs returns the thread slots currently owned by this process, in
// ascending order.
func (p *Process) TIDs() []int {
	p.pod.mu.Lock()
	defer p.pod.mu.Unlock()
	return p.pod.tidsOfLocked(p)
}

func (pod *Pod) tidsOfLocked(p *Process) []int {
	var tids []int
	for tid, owner := range pod.tidOwner {
		if owner == p {
			tids = append(tids, tid)
		}
	}
	return tids
}

// Thread returns a handle for slot tid, which must be owned by this
// process and alive.
func (p *Process) Thread(tid int) (*Thread, error) {
	p.pod.mu.Lock()
	defer p.pod.mu.Unlock()
	if tid < 0 || tid >= len(p.pod.tidOwner) || p.pod.tidOwner[tid] != p {
		return nil, fmt.Errorf("cxlalloc: thread slot %d is not owned by process %d", tid, p.space.ID())
	}
	if !p.pod.heap.Alive(tid) {
		return nil, fmt.Errorf("cxlalloc: thread slot %d is crashed", tid)
	}
	return &Thread{proc: p, tid: tid}, nil
}

// KillProcess simulates whole-process death (the paper's partial failure
// model, §3.4): every thread bound to the process's address space is
// marked crashed exactly as a kill -9 would leave it — mid-operation,
// with CPU caches draining to the device because the host survives — and
// the process's memory mappings are discarded (vas.Space.Revoke), so
// stale handles segfault instead of silently touching shared memory.
// It returns the killed thread slots and is idempotent.
func (pod *Pod) KillProcess(p *Process) []int {
	pod.mu.Lock()
	defer pod.mu.Unlock()
	if p.dead {
		return nil
	}
	p.dead = true
	tids := pod.tidsOfLocked(p)
	for _, tid := range tids {
		pod.heap.MarkCrashed(tid)
	}
	p.space.Revoke()
	return tids
}

// Restart recovers a killed process: a fresh Process (new ID, fresh
// address space with the SIGSEGV handler installed) re-runs the
// non-blocking recovery protocol for every thread slot the dead process
// owned, then adopts those slots. Restarting a live process fails with
// ErrNotCrashed.
//
// Restart is re-runnable: if an injected crash fires during one of the
// slot recoveries, the panic propagates with the remaining slots still
// dead and still owned by the dead process; MarkCrashed the victim and
// call Restart again. Slots a previous aborted attempt already revived
// are adopted as-is (they stay bound to that attempt's space, which
// resolves the same shared bytes).
func (p *Process) Restart() (*Process, []RecoveryReport, error) {
	pod := p.pod
	pod.mu.Lock()
	defer pod.mu.Unlock()
	if !p.dead {
		return nil, nil, fmt.Errorf("cxlalloc: process %d is alive: %w", p.space.ID(), ErrNotCrashed)
	}
	np := pod.newProcessLocked()
	tids := pod.tidsOfLocked(p)
	var reports []RecoveryReport
	for _, tid := range tids {
		if pod.heap.Alive(tid) {
			continue // revived by an earlier, aborted Restart
		}
		rep, err := pod.heap.RecoverThread(tid, np.space)
		if err != nil {
			return nil, reports, fmt.Errorf("cxlalloc: restart of process %d: %w", p.space.ID(), err)
		}
		reports = append(reports, rep)
	}
	// All slots alive: transfer ownership to the new process.
	for _, tid := range tids {
		pod.tidOwner[tid] = np
	}
	return np, reports, nil
}
