// Package cxlalloc is a Go reproduction of "Cxlalloc: Safe and Efficient
// Memory Allocation for a CXL Pod" (Ni, Sun, Zhu, Witchel — ASPLOS 2026):
// a user-space memory allocator for a group of hosts sharing
// CXL-attached memory at cacheline granularity.
//
// The allocator addresses the three challenges the paper identifies:
//
//   - Limited inter-host hardware cache coherence (HWcc): metadata is
//     partitioned into a minimal HWcc region (one 8-byte word per slab
//     plus constants) synchronized with CAS — or with a memory-based
//     CAS (mCAS) served by simulated near-memory-processing logic when
//     the pod has no HWcc at all — and a larger SWcc region kept
//     coherent in software with an explicit flush/fence protocol.
//
//   - Cross-process sharing: allocations are addressed by offset
//     pointers that name the same memory in every process (spatial
//     pointer consistency), and a simulated SIGSEGV handler installs
//     missing memory mappings on demand so a pointer minted in one
//     process can immediately be dereferenced in any other (temporal
//     pointer consistency). Huge allocations are reclaimed safely across
//     processes with a hazard-offset protocol.
//
//   - Partial failure: all multi-writer metadata is lock-free, every
//     operation records an 8-byte redo entry before its first effect,
//     and detectable CAS makes in-flight updates recoverable, so a
//     thread crash never blocks live threads and recovery is
//     non-blocking and leak-free.
//
// Because this is a simulation-backed reproduction, the "CXL device" is
// an in-process arena (internal/memsim) with per-thread write-back
// caches over the SWcc region, simulated per-process page tables
// (internal/vas), and an NMP mCAS unit (internal/nmp). The allocator
// code is identical across coherence models; select one with
// Config.Mode.
//
// # Quick start
//
//	pod, _ := cxlalloc.NewPod(cxlalloc.DefaultConfig())
//	proc := pod.NewProcess()
//	th, _ := proc.AttachThread()
//	p, _ := th.Alloc(128)
//	copy(th.Bytes(p, 5), "hello")
//	th.Free(p)
//
// Multiple Processes share the pod's memory: a Ptr from one process's
// thread is valid in every other.
package cxlalloc

import (
	"fmt"
	"sync"

	"cxlalloc/internal/core"
	"cxlalloc/internal/crash"
	"cxlalloc/internal/liveness"
	"cxlalloc/internal/memsim"
	"cxlalloc/internal/telemetry"
	"cxlalloc/internal/vas"
)

// Ptr is an offset pointer into the pod's shared data region. Ptr 0 is
// nil. Ptrs are valid in every process of the pod (PC-S).
type Ptr = core.Ptr

// Config parameterizes a pod; see core.Config for every knob.
type Config = core.Config

// Footprint is the pod's memory accounting (HWcc/metadata/data bytes).
type Footprint = core.Footprint

// RecoveryReport describes what thread recovery found and redid.
type RecoveryReport = core.RecoveryReport

// Crashed is returned by Thread.Run when an injected crash fired.
type Crashed = crash.Crashed

// LivenessConfig tunes the self-healing pod's heartbeat protocol.
type LivenessConfig = liveness.Config

// LivenessEvent is one observable watchdog action (claim, repair, ...).
type LivenessEvent = liveness.Event

// LivenessKind classifies a LivenessEvent.
type LivenessKind = liveness.Kind

// Re-exported watchdog event kinds.
const (
	LivenessClaim       = liveness.KindClaim
	LivenessRepair      = liveness.KindRepair
	LivenessRepairCrash = liveness.KindRepairCrash
	LivenessFenced      = liveness.KindFenced
	LivenessFalseAlarm  = liveness.KindFalseAlarm
	LivenessRescue      = liveness.KindRescue
	LivenessSelfFence   = liveness.KindSelfFence
)

// SelfFencePoint is the synthetic crash point Thread.Run reports when
// the thread's lease renewal discovered the pod declared it dead and
// recovered its slot elsewhere.
const SelfFencePoint = liveness.SelfFencePoint

// Re-exported sentinel errors.
var (
	ErrOutOfMemory = core.ErrOutOfMemory
	ErrTooLarge    = core.ErrTooLarge
	// ErrNotCrashed is returned by Process.Recover and Process.Restart
	// when the target is alive (never crashed, or already recovered).
	ErrNotCrashed = core.ErrNotCrashed
	// ErrFenced is returned by fenced recovery when the caller's claim
	// was superseded mid-repair.
	ErrFenced = core.ErrFenced
)

// ErrRestartClaimed is returned by Process.Restart when another Restart
// call holds the restart claim for the same dead process. Exactly one
// concurrent caller wins; the losers must not retry blindly — the winner
// either completes (later calls see ErrNotCrashed) or crashes (the claim
// is released and a retry can win).
var ErrRestartClaimed = fmt.Errorf("cxlalloc: restart already claimed")

// DefaultConfig returns a moderate configuration suitable for examples
// and tests.
func DefaultConfig() Config { return core.DefaultConfig() }

// PodConfig extends Config with the self-healing options of NewPodWith.
type PodConfig struct {
	Config
	// AutoRecover turns on the liveness plane: every Thread.Run ticks
	// the pod clock, renews the thread's heartbeat lease, and runs the
	// per-process watchdog, which detects expired leases and repairs
	// crashed slots automatically — no Recover/Restart calls needed.
	AutoRecover bool
	// Liveness tunes lease and poll cadence; zero fields take defaults.
	Liveness LivenessConfig
	// OnEvent, if set, receives every watchdog event synchronously (from
	// the thread whose Run triggered it).
	OnEvent func(LivenessEvent)
}

// Pod is one simulated CXL pod: a shared memory device plus the heap
// metadata living in it. All processes and threads of the pod share one
// Pod value.
type Pod struct {
	dev  *memsim.Device
	heap *core.Heap

	// Self-healing configuration (NewPodWith). auto and onEvent are
	// immutable after creation; lcfg may be swapped at a quiesce point
	// via RetuneLiveness (guarded by mu).
	auto    bool
	lcfg    liveness.Config
	onEvent func(LivenessEvent)

	mu       sync.Mutex
	nextProc int
	tidOwner []*Process // per thread slot: owning process, nil = free
	procs    []*Process // every process ever created, in creation order

	evMu   sync.Mutex
	events []LivenessEvent
}

// NewPod creates a pod with a zeroed device. Zeroed memory is a valid
// heap, so the pod is immediately usable by any number of processes.
func NewPod(cfg Config) (*Pod, error) {
	return NewPodWith(PodConfig{Config: cfg})
}

// NewPodWith creates a pod with the extended (self-healing) options.
func NewPodWith(pc PodConfig) (*Pod, error) {
	dc, err := core.DeviceFor(pc.Config)
	if err != nil {
		return nil, err
	}
	dev := memsim.NewDevice(dc)
	heap, err := core.NewHeap(pc.Config, dev)
	if err != nil {
		return nil, err
	}
	return &Pod{
		dev:      dev,
		heap:     heap,
		auto:     pc.AutoRecover,
		lcfg:     pc.Liveness.WithDefaults(),
		onEvent:  pc.OnEvent,
		tidOwner: make([]*Process, pc.NumThreads),
	}, nil
}

// AutoRecover reports whether the pod runs the liveness plane.
func (pod *Pod) AutoRecover() bool { return pod.auto }

// LivenessEvents returns a copy of every watchdog event emitted so far.
func (pod *Pod) LivenessEvents() []LivenessEvent {
	pod.evMu.Lock()
	defer pod.evMu.Unlock()
	return append([]LivenessEvent(nil), pod.events...)
}

// FalseTakeovers returns how many watchdog claims across all processes
// landed on slots that were actually alive. A correctly tuned grace
// multiple keeps this 0.
func (pod *Pod) FalseTakeovers() uint64 {
	pod.mu.Lock()
	procs := append([]*Process(nil), pod.procs...)
	pod.mu.Unlock()
	var n uint64
	for _, p := range procs {
		if p.mgr != nil {
			n += p.mgr.FalseTakeovers()
		}
	}
	return n
}

// Snapshot assembles the unified telemetry snapshot for the whole pod:
// the heap's allocator/cache/NMP/chaos counters plus the liveness
// watchdog tallies aggregated across every process's manager. It is safe
// to call concurrently with running mutators — every source is an atomic
// counter, a mutex-guarded structure, or a bounded-lag published mirror
// (call Heap().PublishStats() after quiescing for exact values).
func (pod *Pod) Snapshot() telemetry.Snapshot {
	s := pod.heap.Snapshot()
	pod.mu.Lock()
	procs := append([]*Process(nil), pod.procs...)
	pod.mu.Unlock()
	for _, p := range procs {
		if p.mgr == nil {
			continue
		}
		s.Liveness.Repairs += p.mgr.Count(liveness.KindRepair)
		s.Liveness.Fenced += p.mgr.Count(liveness.KindFenced)
		s.Liveness.FalseAlarms += p.mgr.Count(liveness.KindFalseAlarm)
		s.Liveness.Rescues += p.mgr.Count(liveness.KindRescue)
		s.Liveness.SelfFences += p.mgr.Count(liveness.KindSelfFence)
		s.Liveness.FalseTakeovers += p.mgr.FalseTakeovers()
	}
	return s
}

func (pod *Pod) emitEvent(e LivenessEvent) {
	pod.evMu.Lock()
	pod.events = append(pod.events, e)
	cb := pod.onEvent
	pod.evMu.Unlock()
	if cb != nil {
		cb(e)
	}
}

// adoptSlot rebinds slot ownership after a watchdog repair.
func (pod *Pod) adoptSlot(tid int, p *Process) {
	pod.mu.Lock()
	pod.tidOwner[tid] = p
	pod.mu.Unlock()
}

// rescueSlot re-adopts an alive-but-unleased slot to the live process
// owning the space it is bound to, reporting whether one exists.
func (pod *Pod) rescueSlot(tid int) bool {
	sp := pod.heap.ThreadSpace(tid)
	pod.mu.Lock()
	defer pod.mu.Unlock()
	for _, p := range pod.procs {
		if p.space == sp && !p.dead {
			pod.tidOwner[tid] = p
			return true
		}
	}
	return false
}

// leaseTicks is the pod's configured lease duration.
func (pod *Pod) leaseTicks() uint64 { return pod.lcfg.LeaseTicks() }

// RetuneLiveness replaces the heartbeat cadence on an AutoRecover pod
// (zero fields take defaults). Lease durations are denominated in pod
// logical-clock ticks, whose wall rate depends on load, so a harness
// that needs a wall-clock lease target must first measure the pod's
// real tick rate and then retune. Only safe at a quiesce point: no
// thread may be inside Run while the managers' configs are swapped.
// Already-granted leases keep their old deadlines until next renewal.
func (pod *Pod) RetuneLiveness(cfg LivenessConfig) {
	pod.mu.Lock()
	defer pod.mu.Unlock()
	pod.lcfg = cfg.WithDefaults()
	for _, p := range pod.procs {
		if p.mgr != nil {
			p.mgr.Retune(cfg)
		}
	}
}

// Heap exposes the underlying allocator for benchmarks and tests.
func (pod *Pod) Heap() *core.Heap { return pod.heap }

// Device exposes the underlying simulated device.
func (pod *Pod) Device() *memsim.Device { return pod.dev }

// Process is one simulated OS process: its own virtual address space
// over the pod's shared memory, with the cxlalloc SIGSEGV handler
// installed (§3.3).
type Process struct {
	pod   *Pod
	space *vas.Space
	mgr   *liveness.Manager // non-nil on AutoRecover pods
	dead  bool              // guarded by pod.mu; set by Pod.KillProcess

	// Restart arbitration (guarded by pod.mu): restarting is the claim a
	// Restart call holds while it recovers slots; restarted marks a
	// completed Restart, so later calls fail with ErrNotCrashed instead
	// of "succeeding" with an empty process.
	restarting bool
	restarted  bool
}

// NewProcess attaches a new process to the pod.
func (pod *Pod) NewProcess() *Process {
	pod.mu.Lock()
	defer pod.mu.Unlock()
	return pod.newProcessLocked()
}

func (pod *Pod) newProcessLocked() *Process {
	id := pod.nextProc
	pod.nextProc++
	sp := vas.NewSpace(id, pod.dev, pod.heap.Config().PageSize)
	sp.SetHandler(func(tid int, s *vas.Space, page uint64) bool {
		return pod.heap.HandleFault(tid, s.Install, page)
	})
	p := &Process{pod: pod, space: sp}
	if pod.auto {
		p.mgr = liveness.NewManager(pod.heap, sp, pod.lcfg, liveness.Hooks{
			Adopt:  func(victim int) { pod.adoptSlot(victim, p) },
			Rescue: pod.rescueSlot,
			Emit:   pod.emitEvent,
		})
	}
	pod.procs = append(pod.procs, p)
	return p
}

// ID returns the process identifier.
func (p *Process) ID() int { return p.space.ID() }

// Space exposes the process's address space (tests, examples).
func (p *Process) Space() *vas.Space { return p.space }

// FaultStats returns how many on-demand mapping installs this process's
// signal handler performed.
func (p *Process) FaultStats() vas.Stats { return p.space.Stats() }

// Thread is one simulated thread, pinned to a thread slot (the paper
// pins threads to cores). A Thread is NOT safe for concurrent use; give
// each goroutine its own Thread.
type Thread struct {
	proc *Process
	tid  int
	// epoch is the heartbeat-lease epoch this handle was minted under
	// (0 on non-AutoRecover pods). Renewals are scoped to it, so a
	// handle outlived by a watchdog takeover self-fences instead of
	// renewing the new incarnation's lease.
	epoch uint16
}

// AttachThread claims the lowest free thread slot in the pod for this
// process.
func (p *Process) AttachThread() (*Thread, error) {
	p.pod.mu.Lock()
	defer p.pod.mu.Unlock()
	if p.dead {
		return nil, fmt.Errorf("cxlalloc: process %d is dead", p.space.ID())
	}
	for tid, owner := range p.pod.tidOwner {
		if owner == nil {
			if err := p.pod.heap.AttachThread(tid, p.space); err != nil {
				return nil, err
			}
			p.pod.tidOwner[tid] = p
			return &Thread{proc: p, tid: tid, epoch: p.pod.leaseNew(tid)}, nil
		}
	}
	return nil, fmt.Errorf("cxlalloc: all %d thread slots in use", len(p.pod.tidOwner))
}

// AttachThreadID claims a specific thread slot.
func (p *Process) AttachThreadID(tid int) (*Thread, error) {
	p.pod.mu.Lock()
	defer p.pod.mu.Unlock()
	if p.dead {
		return nil, fmt.Errorf("cxlalloc: process %d is dead", p.space.ID())
	}
	if tid < 0 || tid >= len(p.pod.tidOwner) {
		return nil, fmt.Errorf("cxlalloc: thread ID %d out of range", tid)
	}
	if p.pod.tidOwner[tid] != nil {
		return nil, fmt.Errorf("cxlalloc: thread slot %d already in use", tid)
	}
	if err := p.pod.heap.AttachThread(tid, p.space); err != nil {
		return nil, err
	}
	p.pod.tidOwner[tid] = p
	return &Thread{proc: p, tid: tid, epoch: p.pod.leaseNew(tid)}, nil
}

// leaseNew grants a freshly attached (or manually recovered) slot its
// first lease on AutoRecover pods; inert otherwise.
func (pod *Pod) leaseNew(tid int) uint16 {
	if !pod.auto {
		return 0
	}
	return pod.heap.LeaseAcquire(tid, pod.heap.ClockNow(tid)+pod.leaseTicks())
}

// ID returns the thread slot index.
func (t *Thread) ID() int { return t.tid }

// Process returns the owning process.
func (t *Thread) Process() *Process { return t.proc }

// Alloc allocates size bytes of shared memory.
func (t *Thread) Alloc(size int) (Ptr, error) {
	return t.proc.pod.heap.Alloc(t.tid, size)
}

// Free releases an allocation made by any thread in any process.
func (t *Thread) Free(p Ptr) {
	t.proc.pod.heap.Free(t.tid, p)
}

// Bytes returns the allocation's bytes as seen by this thread's process,
// installing mappings on demand (PC-T). n must not exceed the usable
// size.
func (t *Thread) Bytes(p Ptr, n int) []byte {
	return t.proc.pod.heap.Bytes(t.tid, p, n)
}

// UsableSize reports the usable byte count of the allocation at p.
func (t *Thread) UsableSize(p Ptr) int {
	return t.proc.pod.heap.UsableSize(t.tid, p)
}

// Maintain runs the asynchronous huge-heap cleanup for this thread
// (hazard sweep + descriptor reclamation, §3.3.2). Long-running threads
// should call it occasionally.
func (t *Thread) Maintain() {
	t.proc.pod.heap.Maintain(t.tid)
}

// Footprint returns the pod's memory accounting as seen by this thread.
func (t *Thread) Footprint() Footprint {
	return t.proc.pod.heap.Footprint(t.tid)
}

// DrainMagazines returns every block this thread privatized into its
// allocation magazines (DESIGN.md §7.2) back to the shared slabs. The
// hot path never needs this — crash reclamation and the drain-time
// ledger audit account for live magazines — but harnesses and graceful
// shutdown paths use it to minimize the thread's shared-state footprint.
func (t *Thread) DrainMagazines() {
	t.proc.pod.heap.DrainMagazines(t.tid)
}

// Run executes f; if an injected crash point fires (Config.Crash), the
// panic is caught, the thread slot is marked crashed exactly as the
// crash left it, and the Crashed value is returned. The Thread must not
// be used again; recover the slot with Process.Recover.
//
// On AutoRecover pods, Run first performs the thread's liveness duties:
// tick the pod clock, renew this thread's heartbeat lease, and run the
// process watchdog when its poll is due. Three extra outcomes follow:
//
//   - A watchdog repair may crash (injected points inside recovery or
//     the claim protocol); Run returns that Crashed, whose TID may be
//     the repair victim rather than this thread.
//   - A handle whose slot was taken over by another process's watchdog
//     returns a synthetic Crashed at SelfFencePoint without touching
//     shared state; the slot itself stays alive under its new owner.
//   - A handle whose slot is dead (killed while this handle was idle)
//     returns a synthetic Crashed at "liveness.dead-handle".
func (t *Thread) Run(f func()) *Crashed {
	if m := t.proc.mgr; m != nil {
		heap := t.proc.pod.heap
		if !heap.Alive(t.tid) {
			return &Crashed{TID: t.tid, Point: "liveness.dead-handle"}
		}
		if c := crash.Run(func() {
			if m.Heartbeat(t.tid, t.epoch) {
				panic(&crash.Crashed{TID: t.tid, Point: SelfFencePoint})
			}
		}); c != nil {
			if c.Point != SelfFencePoint {
				// A real crash: this thread mid-claim, or the repair
				// victim mid-recovery. Drain the right slot's cache.
				heap.MarkCrashed(c.TID)
			}
			return c
		}
	}
	c := crash.Run(f)
	if c != nil {
		t.proc.pod.heap.MarkCrashed(t.tid)
	}
	return c
}

// Kill marks the thread as crashed immediately (outside any operation).
func (t *Thread) Kill() {
	t.proc.pod.heap.MarkCrashed(t.tid)
}

// Recover runs the non-blocking recovery protocol (§3.4.2) on a crashed
// thread slot, rebinding it to this process, and returns a fresh Thread
// plus the recovery report. Recovering a slot that is alive — never
// crashed, or already recovered — fails with ErrNotCrashed.
func (p *Process) Recover(tid int) (*Thread, RecoveryReport, error) {
	p.pod.mu.Lock()
	if p.dead {
		p.pod.mu.Unlock()
		return nil, RecoveryReport{}, fmt.Errorf("cxlalloc: process %d is dead", p.space.ID())
	}
	p.pod.mu.Unlock()
	rep, err := p.pod.heap.RecoverThread(tid, p.space)
	if err != nil {
		return nil, rep, err
	}
	p.pod.mu.Lock()
	p.pod.tidOwner[tid] = p
	p.pod.mu.Unlock()
	return &Thread{proc: p, tid: tid, epoch: p.pod.leaseNew(tid)}, rep, nil
}

// Dead reports whether the process was killed by Pod.KillProcess.
func (p *Process) Dead() bool {
	p.pod.mu.Lock()
	defer p.pod.mu.Unlock()
	return p.dead
}

// TIDs returns the thread slots currently owned by this process, in
// ascending order.
func (p *Process) TIDs() []int {
	p.pod.mu.Lock()
	defer p.pod.mu.Unlock()
	return p.pod.tidsOfLocked(p)
}

func (pod *Pod) tidsOfLocked(p *Process) []int {
	var tids []int
	for tid, owner := range pod.tidOwner {
		if owner == p {
			tids = append(tids, tid)
		}
	}
	return tids
}

// Thread returns a handle for slot tid, which must be owned by this
// process and alive.
func (p *Process) Thread(tid int) (*Thread, error) {
	p.pod.mu.Lock()
	defer p.pod.mu.Unlock()
	if tid < 0 || tid >= len(p.pod.tidOwner) || p.pod.tidOwner[tid] != p {
		return nil, fmt.Errorf("cxlalloc: thread slot %d is not owned by process %d", tid, p.space.ID())
	}
	if !p.pod.heap.Alive(tid) {
		return nil, fmt.Errorf("cxlalloc: thread slot %d is crashed", tid)
	}
	return &Thread{proc: p, tid: tid, epoch: p.pod.heap.LeaseEpoch(tid)}, nil
}

// OwnerOf returns the process currently owning thread slot tid (nil if
// the slot is free). On AutoRecover pods ownership moves when a watchdog
// repairs a slot, so harnesses use this to find the surviving owner.
func (pod *Pod) OwnerOf(tid int) *Process {
	pod.mu.Lock()
	defer pod.mu.Unlock()
	if tid < 0 || tid >= len(pod.tidOwner) {
		return nil
	}
	return pod.tidOwner[tid]
}

// ThreadOf returns a fresh handle for slot tid under its current owner
// and lease epoch, or an error if the slot is unowned or not alive.
func (pod *Pod) ThreadOf(tid int) (*Thread, error) {
	p := pod.OwnerOf(tid)
	if p == nil {
		return nil, fmt.Errorf("cxlalloc: thread slot %d is unowned", tid)
	}
	return p.Thread(tid)
}

// KillProcess simulates whole-process death (the paper's partial failure
// model, §3.4): every thread bound to the process's address space is
// marked crashed exactly as a kill -9 would leave it — mid-operation,
// with CPU caches draining to the device because the host survives — and
// the process's memory mappings are discarded (vas.Space.Revoke), so
// stale handles segfault instead of silently touching shared memory.
// It returns the killed thread slots and is idempotent.
func (pod *Pod) KillProcess(p *Process) []int {
	pod.mu.Lock()
	defer pod.mu.Unlock()
	if p.dead {
		return nil
	}
	p.dead = true
	tids := pod.tidsOfLocked(p)
	for _, tid := range tids {
		pod.heap.MarkCrashed(tid)
	}
	p.space.Revoke()
	return tids
}

// Restart recovers a killed process: a fresh Process (new ID, fresh
// address space with the SIGSEGV handler installed) re-runs the
// non-blocking recovery protocol for every thread slot the dead process
// owned, then adopts those slots. Restarting a live process fails with
// ErrNotCrashed; restarting a process someone already restarted also
// fails with ErrNotCrashed.
//
// Restart is claim-based: concurrent calls race for the restarting flag
// under pod.mu, exactly one proceeds, and the losers fail fast with
// ErrRestartClaimed instead of both recovering the same slots (the old
// code let two callers pass the dead check and double-recover). The
// claim is released on every exit — including an injected crash panic —
// so a crashed Restart can be retried: the remaining slots are still
// dead and still owned by the dead process; MarkCrashed the victim and
// call Restart again. Slots a previous aborted attempt already revived
// are adopted as-is (they stay bound to that attempt's space, which
// resolves the same shared bytes).
func (p *Process) Restart() (*Process, []RecoveryReport, error) {
	pod := p.pod
	pod.mu.Lock()
	switch {
	case !p.dead || p.restarted:
		pod.mu.Unlock()
		return nil, nil, fmt.Errorf("cxlalloc: process %d is alive: %w", p.space.ID(), ErrNotCrashed)
	case p.restarting:
		pod.mu.Unlock()
		return nil, nil, fmt.Errorf("cxlalloc: process %d: %w", p.space.ID(), ErrRestartClaimed)
	}
	p.restarting = true
	np := pod.newProcessLocked()
	tids := pod.tidsOfLocked(p)
	pod.mu.Unlock()

	done := false
	defer func() {
		// Release the claim even when a slot recovery panics (injected
		// crash); only a completed Restart latches restarted.
		pod.mu.Lock()
		p.restarting = false
		p.restarted = done
		pod.mu.Unlock()
	}()

	// Recover outside pod.mu: per-slot recMu inside RecoverThread is the
	// serialization that matters, and holding pod.mu across recovery
	// would deadlock against a watchdog's Adopt hook.
	var reports []RecoveryReport
	for _, tid := range tids {
		if pod.heap.Alive(tid) {
			continue // revived by an earlier, aborted Restart
		}
		rep, err := pod.heap.RecoverThread(tid, np.space)
		if err != nil {
			return nil, reports, fmt.Errorf("cxlalloc: restart of process %d: %w", p.space.ID(), err)
		}
		pod.leaseNew(tid)
		reports = append(reports, rep)
	}
	// All slots alive: transfer ownership to the new process.
	pod.mu.Lock()
	for _, tid := range tids {
		pod.tidOwner[tid] = np
	}
	pod.mu.Unlock()
	done = true
	return np, reports, nil
}
