package cxlalloc

// End-to-end soak: the whole stack at once — pod, processes, fault
// handlers, mixed-size workload with cross-process frees, periodic
// crashes with recovery, and invariant + leak audits — once per
// coherence mode. This is the closest in-tree analogue of the paper's
// §5.1 methodology ("we run all of our benchmarks with these checks
// enabled and observe no errors").

import (
	"fmt"
	"sync"
	"testing"

	"cxlalloc/internal/atomicx"
	"cxlalloc/internal/crash"
	"cxlalloc/internal/xrand"
)

func soakConfig(mode atomicx.Mode, inj *crash.Injector) Config {
	cfg := DefaultConfig()
	cfg.NumThreads = 6
	cfg.MaxSmallSlabs = 1024
	cfg.MaxLargeSlabs = 64
	cfg.HugeRegionSize = 4 << 20
	cfg.NumReservations = 32
	cfg.DescsPerThread = 64
	cfg.NumHazards = 32
	cfg.Mode = mode
	cfg.Crash = inj
	return cfg
}

func TestSoakAllModes(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	for _, mode := range []atomicx.Mode{atomicx.ModeDRAM, atomicx.ModeHWcc, atomicx.ModeMCAS} {
		t.Run(mode.String(), func(t *testing.T) {
			inj := crash.NewInjector()
			pod, err := NewPod(soakConfig(mode, inj))
			if err != nil {
				t.Fatal(err)
			}
			procA, procB := pod.NewProcess(), pod.NewProcess()

			// Five worker threads churn; slot 5 is the crash victim.
			var workers []*Thread
			for i := 0; i < 5; i++ {
				proc := procA
				if i%2 == 1 {
					proc = procB
				}
				th, err := proc.AttachThread()
				if err != nil {
					t.Fatal(err)
				}
				workers = append(workers, th)
			}
			victim, err := procA.AttachThreadID(5)
			if err != nil {
				t.Fatal(err)
			}

			// Cross-thread free mailboxes.
			boxes := make([]chan Ptr, 5)
			for i := range boxes {
				boxes[i] = make(chan Ptr, 128)
			}
			var wg sync.WaitGroup
			for i, th := range workers {
				wg.Add(1)
				go func(i int, th *Thread) {
					defer wg.Done()
					rng := xrand.New(uint64(i) * 1313)
					var local []Ptr
					ops := 3000
					if mode != atomicx.ModeDRAM {
						ops = 1200 // cache-sim modes are slower
					}
					for op := 0; op < ops; op++ {
						for {
							select {
							case p := <-boxes[i]:
								th.Free(p)
								continue
							default:
							}
							break
						}
						switch {
						case rng.Intn(2) == 0:
							size := rng.IntRange(1, 2048)
							if rng.Intn(50) == 0 {
								size = 600 << 10 // occasional huge
							}
							p, err := th.Alloc(size)
							if err != nil {
								t.Errorf("worker %d: %v", i, err)
								return
							}
							th.Bytes(p, 1)[0] = byte(i)
							local = append(local, p)
						case len(local) > 0:
							j := rng.Intn(len(local))
							p := local[j]
							local = append(local[:j], local[j+1:]...)
							select {
							case boxes[(i+1)%5] <- p:
							default:
								th.Free(p)
							}
						}
						if op%512 == 0 {
							th.Maintain()
						}
					}
					for _, p := range local {
						th.Free(p)
					}
					th.Maintain()
				}(i, th)
			}

			// Victim crash/recover loop, concurrent with the workers.
			rng := xrand.New(999)
			for round := 0; round < 6; round++ {
				point := []string{
					"small.alloc.post-take", "small.extend.post-cas",
					"small.remote-free.pre-cas", "huge.alloc.post-desc",
				}[round%4]
				inj.Arm(point, victim.ID(), rng.Intn(3))
				var held []Ptr
				c := victim.Run(func() {
					for k := 0; k < 300; k++ {
						size := rng.IntRange(1, 1024)
						if k%37 == 0 {
							size = 600 << 10
						}
						p, err := victim.Alloc(size)
						if err != nil {
							continue
						}
						held = append(held, p)
						if len(held) > 4 {
							victim.Free(held[0])
							held = held[1:]
						}
					}
				})
				inj.Disarm()
				if c == nil {
					// Point not reached this round; free and continue.
					for _, p := range held {
						victim.Free(p)
					}
					continue
				}
				th2, rep, err := procA.Recover(victim.ID())
				if err != nil {
					t.Fatalf("round %d recover: %v", round, err)
				}
				if rep.PendingAlloc != 0 {
					th2.Free(rep.PendingAlloc)
				}
				for _, p := range held {
					th2.Free(p)
				}
				victim = th2
			}
			wg.Wait()

			// Drain mailboxes, then audit.
			for i, th := range workers {
				for {
					select {
					case p := <-boxes[i]:
						th.Free(p)
						continue
					default:
					}
					break
				}
				th.Maintain()
			}
			victim.Maintain()
			if err := pod.Heap().CheckAll(workers[0].ID()); err != nil {
				t.Fatalf("invariants after soak: %v", err)
			}
			// Functional epilogue: every thread still works.
			for _, th := range append(workers, victim) {
				p, err := th.Alloc(128)
				if err != nil {
					t.Fatal(err)
				}
				th.Free(p)
			}
			if f := victim.Footprint(); f.HWccFraction() > 0.05 {
				t.Fatalf("HWcc fraction %v implausibly high", f.HWccFraction())
			}
			_ = fmt.Sprintf
		})
	}
}
