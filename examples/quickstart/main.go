// Quickstart: create a pod, attach a process and a thread, allocate,
// share, and free memory.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cxlalloc"
)

func main() {
	// A pod is one shared CXL memory device plus its heap metadata.
	// Zeroed memory is a valid heap: no initialization coordination.
	pod, err := cxlalloc.NewPod(cxlalloc.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Each simulated OS process gets its own virtual address space with
	// cxlalloc's fault handler installed.
	proc := pod.NewProcess()
	th, err := proc.AttachThread()
	if err != nil {
		log.Fatal(err)
	}

	// Allocate from the small heap (8 B – 1 KiB classes).
	p, err := th.Alloc(128)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("allocated 128 B at offset %#x (usable %d B)\n", p, th.UsableSize(p))

	// Pointers are offsets; Bytes resolves them in this process.
	copy(th.Bytes(p, 13), "hello, pod!!!")
	fmt.Printf("wrote and read back: %q\n", th.Bytes(p, 13))

	// A second process dereferences the same pointer: the simulated
	// SIGSEGV handler installs the missing mapping on demand (PC-T).
	proc2 := pod.NewProcess()
	th2, err := proc2.AttachThread()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("process %d reads the same offset: %q\n", proc2.ID(), th2.Bytes(p, 13))
	fmt.Printf("process %d faulted %d mappings in on demand\n",
		proc2.ID(), proc2.FaultStats().Faults)

	// Remote free: any thread in any process may free it.
	th2.Free(p)

	// Large (1 KiB – 512 KiB) and huge (> 512 KiB, mapping-backed).
	large, _ := th.Alloc(100 << 10)
	huge, err := th.Alloc(2 << 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("large at %#x, huge at %#x\n", large, huge)
	th.Free(large)
	th.Free(huge)
	th.Maintain() // asynchronous huge-heap cleanup (hazard sweep)

	f := th.Footprint()
	fmt.Printf("footprint: data=%d B, metadata=%d B, HWcc=%d B (%.4f%% of total)\n",
		f.DataBytes, f.MetaBytes, f.HWccBytes, 100*f.HWccFraction())
}
