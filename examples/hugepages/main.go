// hugepages: cross-process huge allocations (§3.3.2), the feature the
// paper calls novel — no baseline supports it. A thread in one process
// creates a mapping-backed multi-megabyte allocation; a thread in
// another process dereferences it (fault handler walks the huge
// descriptor list, publishes a hazard offset, installs the mapping);
// the allocation is then freed and the hazard-offset protocol delays
// reclamation until every process has retired its mapping.
//
//	go run ./examples/hugepages
package main

import (
	"fmt"
	"log"

	"cxlalloc"
)

func main() {
	pod, err := cxlalloc.NewPod(cxlalloc.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	procA, procB := pod.NewProcess(), pod.NewProcess()
	a, err := procA.AttachThread()
	if err != nil {
		log.Fatal(err)
	}
	b, err := procB.AttachThread()
	if err != nil {
		log.Fatal(err)
	}

	// 24 MiB: backed by its own memory mapping, spanning several
	// reservation-array regions.
	const size = 24 << 20
	p, err := a.Alloc(size)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("huge allocation: %d MiB at offset %#x (usable %d MiB)\n",
		size>>20, p, a.UsableSize(p)>>20)

	buf := a.Bytes(p, size)
	buf[0], buf[size-1] = 0xAB, 0xCD

	// Process B touches both ends: each access faults, the handler
	// publishes B's hazard offset and installs the mapping.
	view := b.Bytes(p, size)
	fmt.Printf("process B reads ends: %#x %#x (after %d on-demand mapping installs)\n",
		view[0], view[size-1], procB.FaultStats().Faults)

	// A frees the allocation. B still holds a hazard for its mapping,
	// so the owner cannot reclaim the address range yet.
	a.Free(p)
	a.Maintain()
	fmt.Println("freed by A; B's hazard offset blocks reclamation")

	// B's periodic maintenance notices the free bit, unmaps its view,
	// and retires the hazard; then A's maintenance reclaims descriptor
	// and address space.
	b.Maintain()
	a.Maintain()
	fmt.Println("B retired its hazard; A reclaimed descriptor and address space")

	// The address space is immediately reusable.
	q, err := a.Alloc(size)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reallocated %d MiB at %#x (address space recycled: %v)\n",
		size>>20, q, q == p)
	a.Free(q)
	a.Maintain()

	// Use after free is caught, not silently corrupted: B's next access
	// faults and the handler refuses to map a freed allocation.
	defer func() {
		if r := recover(); r != nil {
			fmt.Printf("use-after-free detected: %v\n", r)
		}
	}()
	_ = b.Bytes(p, 8)
}
