// mcas: running the pod with NO inter-host hardware cache coherence
// (paper §4, Figure 1(B)). All HWcc-metadata synchronization goes
// through the simulated near-memory-processing unit's memory-based CAS:
// a spwr (special write) carrying expected value, swap value, and target
// address, then a sprd (special read) that triggers the operation and
// returns the success bit — with same-address conflicts failing the
// competing operation, exactly as the FPGA prototype behaves.
//
//	go run ./examples/mcas
package main

import (
	"fmt"
	"log"
	"sync"

	"cxlalloc"
	"cxlalloc/internal/atomicx"
)

func main() {
	cfg := cxlalloc.DefaultConfig()
	cfg.Mode = atomicx.ModeMCAS // no HWcc anywhere: mCAS via the NMP
	pod, err := cxlalloc.NewPod(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Two processes, one thread each: a producer-consumer pipeline whose
	// remote frees all synchronize through mCAS.
	prod, err := pod.NewProcess().AttachThread()
	if err != nil {
		log.Fatal(err)
	}
	cons, err := pod.NewProcess().AttachThread()
	if err != nil {
		log.Fatal(err)
	}

	const msgs = 20000
	ch := make(chan cxlalloc.Ptr, 256)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		defer close(ch)
		for i := 0; i < msgs; i++ {
			p, err := prod.Alloc(128)
			if err != nil {
				log.Fatal(err)
			}
			prod.Bytes(p, 128)[0] = byte(i)
			ch <- p
		}
	}()
	go func() {
		defer wg.Done()
		for p := range ch {
			_ = cons.Bytes(p, 128)[0]
			cons.Free(p) // remote free: an mCAS on the slab's countdown
		}
	}()
	wg.Wait()

	st := pod.Heap().NMPStats()
	fmt.Printf("moved %d messages with zero hardware cache coherence\n", msgs)
	fmt.Printf("NMP unit served %d spwr / %d sprd operations\n", st.SpWrs, st.SpRds)
	fmt.Printf("  mCAS successes: %d, failures: %d (of which %d same-address conflicts)\n",
		st.Successes, st.Failures, st.Conflicts)
	f := prod.Footprint()
	fmt.Printf("device-biased (uncachable mCAS) metadata: %d B — %.4f%% of the heap\n",
		f.HWccBytes, 100*f.HWccFraction())
	fmt.Println("the other 99.99% of metadata stayed CPU-cached under the SWcc protocol")
}
