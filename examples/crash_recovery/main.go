// crash_recovery: partial failure tolerance end to end (§3.4). A thread
// is crashed at a white-box crash point inside the allocator — after a
// block has been taken from a slab but before the pointer reaches the
// application. Live threads keep allocating throughout (crashes never
// block, §3.4.1); recovery redoes the interrupted operation from the
// 8-byte redo record, reports the orphaned block as a pending
// allocation, and the application adopts it — no leak, no blocking GC.
//
//	go run ./examples/crash_recovery
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"cxlalloc"
	"cxlalloc/internal/crash"
)

func main() {
	cfg := cxlalloc.DefaultConfig()
	inj := crash.NewInjector()
	cfg.Crash = inj
	pod, err := cxlalloc.NewPod(cfg)
	if err != nil {
		log.Fatal(err)
	}
	proc := pod.NewProcess()
	victim, err := proc.AttachThread()
	if err != nil {
		log.Fatal(err)
	}
	bystander, err := proc.AttachThread()
	if err != nil {
		log.Fatal(err)
	}

	// A live thread allocates continuously in the background.
	var background atomic.Int64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			p, err := bystander.Alloc(512)
			if err != nil {
				log.Fatal(err)
			}
			bystander.Free(p)
			background.Add(1)
		}
	}()

	// Arm a crash inside the allocator: the 3rd time the victim reaches
	// the point where a block has been taken but not yet returned.
	inj.Arm("small.alloc.post-take", victim.ID(), 2)
	var kept []cxlalloc.Ptr
	crashed := victim.Run(func() {
		for i := 0; i < 10; i++ {
			p, err := victim.Alloc(64)
			if err != nil {
				log.Fatal(err)
			}
			kept = append(kept, p)
		}
	})
	if crashed == nil {
		log.Fatal("expected a crash")
	}
	fmt.Printf("thread %d crashed at %q after %d successful allocations\n",
		crashed.TID, crashed.Point, len(kept))

	// The crash does not block the live thread.
	before := background.Load()
	time.Sleep(20 * time.Millisecond)
	fmt.Printf("live thread made %d allocations while the victim was dead\n",
		background.Load()-before)

	// Non-blocking recovery: redo the in-flight op, rebuild thread
	// state, report the pending allocation.
	recovered, report, err := proc.Recover(crashed.TID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered thread %d: in-flight op was %q\n", report.TID, report.Op)
	if report.PendingAlloc != 0 {
		fmt.Printf("pending allocation at %#x (%d B) handed to the application — adopting it\n",
			report.PendingAlloc, report.PendingSize)
		kept = append(kept, report.PendingAlloc)
	}

	// The recovered thread continues normally; pre-crash allocations
	// survive and are freeable.
	for i := len(kept); i < 10; i++ {
		p, err := recovered.Alloc(64)
		if err != nil {
			log.Fatal(err)
		}
		kept = append(kept, p)
	}
	for _, p := range kept {
		recovered.Free(p)
	}
	close(stop)
	<-done
	fmt.Println("all allocations freed: no leak, no blocking, no GC pause")
}
