// producer_consumer: cross-process message passing through shared
// memory, the workload shape that stresses cxlalloc's remote-free
// protocol (§3.2.1). Producers in one process allocate messages;
// consumers in another process read and free them. Every free is
// remote, driving the HWcc countdown, and fully consumed slabs are
// stolen by consumer threads — memory migrates to where it is freed
// without coordinating with the original owner.
//
//	go run ./examples/producer_consumer
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"cxlalloc"
)

const (
	pairs       = 2
	perProducer = 100_000
	msgSize     = 256
)

func main() {
	pod, err := cxlalloc.NewPod(cxlalloc.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	producers := pod.NewProcess()
	consumers := pod.NewProcess()

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < pairs; i++ {
		ch := make(chan cxlalloc.Ptr, 512)
		prod, err := producers.AttachThread()
		if err != nil {
			log.Fatal(err)
		}
		cons, err := consumers.AttachThread()
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(2)
		go func(th *cxlalloc.Thread, seq int) {
			defer wg.Done()
			defer close(ch)
			for j := 0; j < perProducer; j++ {
				p, err := th.Alloc(msgSize)
				if err != nil {
					log.Fatal(err)
				}
				msg := th.Bytes(p, msgSize)
				msg[0] = byte(seq)
				msg[msgSize-1] = byte(j)
				ch <- p
			}
		}(prod, i)
		go func(th *cxlalloc.Thread, seq int) {
			defer wg.Done()
			n := 0
			for p := range ch {
				msg := th.Bytes(p, msgSize) // faults mappings in on demand
				if msg[0] != byte(seq) {
					log.Fatalf("corrupt message: got tag %d want %d", msg[0], seq)
				}
				th.Free(p) // remote free: HWcc countdown, possible steal
				n++
			}
			fmt.Printf("consumer %d (process %d): consumed %d messages\n",
				seq, th.Process().ID(), n)
		}(cons, i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := pairs * perProducer
	fmt.Printf("\n%d messages of %d B in %v — %.2fM msgs/sec\n",
		total, msgSize, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds()/1e6)

	// The consumer process faulted producer-created slabs in on demand.
	fmt.Printf("consumer process installed %d mappings via the fault handler\n",
		consumers.FaultStats().Faults)

	// Memory stayed bounded: fully remotely freed slabs were stolen and
	// recycled instead of leaking.
	smallLen, _ := pod.Heap().HeapLengths(0)
	fmt.Printf("small heap settled at %d slabs (%.1f MiB) for %.1f MiB of traffic\n",
		smallLen, float64(smallLen)*32/1024, float64(total*msgSize)/(1<<20))
}
