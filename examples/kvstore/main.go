// kvstore: a shared in-memory key-value store served by threads in
// different simulated processes — the paper's motivating use case
// (§5.2.1). Four threads across two processes run a YCSB-A-style mix
// (25% insert, 25% delete, 50% read, zipfian keys) against one
// lock-free index whose entries live in cxlalloc-managed shared memory.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"cxlalloc"
	"cxlalloc/internal/alloc"
	"cxlalloc/internal/kvstore"
	"cxlalloc/internal/workload"
)

const (
	nProcs      = 2
	perProc     = 2
	totalOps    = 200_000
	keyspace    = 50_000
	initialLoad = 20_000
)

func main() {
	pod, err := cxlalloc.NewPod(cxlalloc.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	var threads []*cxlalloc.Thread
	for p := 0; p < nProcs; p++ {
		proc := pod.NewProcess()
		for i := 0; i < perProc; i++ {
			th, err := proc.AttachThread()
			if err != nil {
				log.Fatal(err)
			}
			threads = append(threads, th)
		}
	}
	nThreads := len(threads)

	// The index is shared; entry bytes are cxlalloc allocations.
	store := kvstore.New(alloc.NewCXL(pod.Heap(), "cxlalloc"), 1<<16, nThreads)
	spec, err := workload.SpecByName("YCSB-A", keyspace, initialLoad)
	if err != nil {
		log.Fatal(err)
	}

	// Load phase.
	loadSpec := spec
	loadSpec.InsertFrac, loadSpec.DeleteFrac = 1.0, 0
	var wg sync.WaitGroup
	for i, th := range threads {
		wg.Add(1)
		go func(i int, th *cxlalloc.Thread) {
			defer wg.Done()
			g := workload.NewKVGen(loadSpec, 42, i, nThreads)
			for j := 0; j < initialLoad/nThreads; j++ {
				op := g.Next()
				if err := store.Put(th.ID(), op.Key, op.Val); err != nil {
					log.Fatal(err)
				}
			}
		}(i, th)
	}
	wg.Wait()

	// Timed mixed phase.
	start := time.Now()
	for i, th := range threads {
		wg.Add(1)
		go func(i int, th *cxlalloc.Thread) {
			defer wg.Done()
			g := workload.NewKVGen(spec, 7, i, nThreads)
			var val []byte
			for j := 0; j < totalOps/nThreads; j++ {
				op := g.Next()
				switch op.Kind {
				case workload.OpInsert:
					if err := store.Put(th.ID(), op.Key, op.Val); err != nil {
						log.Fatal(err)
					}
				case workload.OpDelete:
					store.Delete(th.ID(), op.Key)
				default:
					val, _ = store.Get(th.ID(), op.Key, val)
				}
			}
		}(i, th)
	}
	wg.Wait()
	elapsed := time.Since(start)
	store.Drain(nThreads)

	st := store.Stats()
	f := threads[0].Footprint()
	fmt.Printf("YCSB-A: %d ops in %v — %.2fM ops/sec across %d threads in %d processes\n",
		totalOps, elapsed.Round(time.Millisecond),
		float64(totalOps)/elapsed.Seconds()/1e6, nThreads, nProcs)
	fmt.Printf("store: %d inserts (%d replaced), %d deletes, %d hits, %d misses, %d entries reclaimed\n",
		st.Inserts, st.Replaces, st.Deletes, st.Hits, st.Misses, st.Reclaimed)
	fmt.Printf("memory: %.1f MiB data, %.1f KiB HWcc metadata (%.4f%% of total)\n",
		float64(f.DataBytes)/(1<<20), float64(f.HWccBytes)/1024, 100*f.HWccFraction())
}
