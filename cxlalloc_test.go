package cxlalloc

import (
	"errors"
	"sync"
	"testing"

	"cxlalloc/internal/atomicx"
	"cxlalloc/internal/crash"
)

func smallPodConfig() Config {
	cfg := DefaultConfig()
	cfg.NumThreads = 8
	cfg.MaxSmallSlabs = 64
	cfg.MaxLargeSlabs = 8
	cfg.HugeRegionSize = 1 << 20
	cfg.NumReservations = 8
	cfg.DescsPerThread = 16
	cfg.NumHazards = 8
	return cfg
}

func TestPodQuickstart(t *testing.T) {
	pod, err := NewPod(smallPodConfig())
	if err != nil {
		t.Fatal(err)
	}
	proc := pod.NewProcess()
	th, err := proc.AttachThread()
	if err != nil {
		t.Fatal(err)
	}
	p, err := th.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	copy(th.Bytes(p, 5), "hello")
	if got := string(th.Bytes(p, 5)); got != "hello" {
		t.Fatalf("read back %q", got)
	}
	if th.UsableSize(p) < 128 {
		t.Fatal("usable size too small")
	}
	th.Free(p)
	if f := th.Footprint(); f.Total() == 0 {
		t.Fatal("footprint empty after use")
	}
}

func TestPodCrossProcessSharing(t *testing.T) {
	pod, _ := NewPod(smallPodConfig())
	procA, procB := pod.NewProcess(), pod.NewProcess()
	if procA.ID() == procB.ID() {
		t.Fatal("duplicate process IDs")
	}
	a, _ := procA.AttachThread()
	b, _ := procB.AttachThread()
	p, err := a.Alloc(1024)
	if err != nil {
		t.Fatal(err)
	}
	copy(a.Bytes(p, 9), "cxl-pod-!")
	if got := string(b.Bytes(p, 9)); got != "cxl-pod-!" {
		t.Fatalf("cross-process read = %q", got)
	}
	if procB.FaultStats().Faults == 0 {
		t.Fatal("process B read without faulting: PC-T untested")
	}
	b.Free(p) // remote free
}

func TestPodThreadSlotManagement(t *testing.T) {
	cfg := smallPodConfig()
	cfg.NumThreads = 2
	pod, _ := NewPod(cfg)
	proc := pod.NewProcess()
	t1, err := proc.AttachThread()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proc.AttachThreadID(t1.ID()); err == nil {
		t.Fatal("claimed an in-use slot")
	}
	t2, err := proc.AttachThreadID(1)
	if err != nil {
		t.Fatal(err)
	}
	if t1.ID() == t2.ID() {
		t.Fatal("duplicate thread IDs")
	}
	if _, err := proc.AttachThread(); err == nil {
		t.Fatal("attached beyond NumThreads")
	}
	if _, err := proc.AttachThreadID(99); err == nil {
		t.Fatal("attached out-of-range slot")
	}
}

func TestPodCrashAndRecover(t *testing.T) {
	cfg := smallPodConfig()
	inj := crash.NewInjector()
	cfg.Crash = inj
	pod, _ := NewPod(cfg)
	proc := pod.NewProcess()
	th, _ := proc.AttachThread()

	inj.Arm("small.alloc.post-take", th.ID(), 0)
	c := th.Run(func() { th.Alloc(64) })
	if c == nil {
		t.Fatal("crash never fired")
	}
	inj.Disarm()

	th2, rep, err := proc.Recover(th.ID())
	if err != nil {
		t.Fatal(err)
	}
	if rep.PendingAlloc == 0 {
		t.Fatal("pending allocation not reported")
	}
	th2.Free(rep.PendingAlloc) // the app declines the orphaned block
	p, err := th2.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	th2.Free(p)
}

func TestPodKillAndRecoverCrossProcess(t *testing.T) {
	pod, _ := NewPod(smallPodConfig())
	procA := pod.NewProcess()
	a, _ := procA.AttachThread()
	p, _ := a.Alloc(256)
	copy(a.Bytes(p, 4), "live")
	a.Kill()
	// The whole process died; recover the slot into a new process.
	procB := pod.NewProcess()
	b, rep, err := procB.Recover(a.ID())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Op != "none" {
		t.Fatalf("unexpected in-flight op %q", rep.Op)
	}
	if got := string(b.Bytes(p, 4)); got != "live" {
		t.Fatalf("data lost across process restart: %q", got)
	}
	b.Free(p)
}

func TestPodConcurrentThreads(t *testing.T) {
	pod, _ := NewPod(smallPodConfig())
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		proc := pod.NewProcess()
		th, err := proc.AttachThread()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(th *Thread) {
			defer wg.Done()
			for j := 0; j < 2000; j++ {
				p, err := th.Alloc(1 + j%1500)
				if err != nil {
					t.Errorf("thread %d: %v", th.ID(), err)
					return
				}
				th.Bytes(p, 1)[0] = byte(j)
				th.Free(p)
			}
		}(th)
	}
	wg.Wait()
}

func TestPodModes(t *testing.T) {
	for _, mode := range []atomicx.Mode{atomicx.ModeDRAM, atomicx.ModeHWcc, atomicx.ModeSWFlush, atomicx.ModeMCAS} {
		cfg := smallPodConfig()
		cfg.Mode = mode
		pod, err := NewPod(cfg)
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		proc := pod.NewProcess()
		th, _ := proc.AttachThread()
		p, err := th.Alloc(100)
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		th.Free(p)
	}
}

func TestPodHugeLifecycle(t *testing.T) {
	pod, _ := NewPod(smallPodConfig())
	proc := pod.NewProcess()
	th, _ := proc.AttachThread()
	p, err := th.Alloc(600 << 10) // > 512 KiB: huge heap
	if err != nil {
		t.Fatal(err)
	}
	b := th.Bytes(p, 600<<10)
	b[0], b[len(b)-1] = 1, 2
	th.Free(p)
	th.Maintain()
	// Space reclaimed: can allocate again repeatedly.
	for i := 0; i < 4; i++ {
		q, err := th.Alloc(600 << 10)
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		th.Free(q)
		th.Maintain()
	}
}

func TestPodInvalidConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumThreads = -1
	if _, err := NewPod(cfg); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestPodKillProcessRestart(t *testing.T) {
	pod, _ := NewPod(smallPodConfig())
	procA, procB := pod.NewProcess(), pod.NewProcess()
	a1, _ := procA.AttachThread()
	a2, _ := procA.AttachThread()
	b, _ := procB.AttachThread()

	p, _ := a1.Alloc(256)
	copy(a1.Bytes(p, 4), "data")
	q, _ := a2.Alloc(600 << 10) // huge, to exercise hazard/interval rebuild
	a2.Bytes(q, 8)[0] = 7

	killed := pod.KillProcess(procA)
	if len(killed) != 2 {
		t.Fatalf("killed %v, want both of process A's threads", killed)
	}
	if !procA.Dead() {
		t.Fatal("process not marked dead")
	}
	if pod.KillProcess(procA) != nil {
		t.Fatal("second kill not idempotent")
	}
	// Dead process rejects new work.
	if _, err := procA.AttachThread(); err == nil {
		t.Fatal("attached thread to dead process")
	}
	if _, _, err := procA.Recover(a1.ID()); err == nil {
		t.Fatal("recovered into dead process")
	}
	// A stale handle faults instead of touching shared memory.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("stale thread handle did not segfault")
			}
		}()
		a1.Bytes(p, 4)
	}()

	// The surviving process keeps allocating while A is down (§3.4.1).
	for i := 0; i < 10; i++ {
		r, err := b.Alloc(128)
		if err != nil {
			t.Fatal(err)
		}
		b.Free(r)
	}

	procA2, reports, err := procA.Restart()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("recovered %d slots, want 2", len(reports))
	}
	if got := procA2.TIDs(); len(got) != 2 {
		t.Fatalf("restarted process owns %v", got)
	}
	// Restarting the (live) new process fails typed.
	if _, _, err := procA2.Restart(); !errors.Is(err, ErrNotCrashed) {
		t.Fatalf("restart of live process: err = %v, want ErrNotCrashed", err)
	}
	// Data survives into the fresh address space; mappings fault back in.
	na1, err := procA2.Thread(a1.ID())
	if err != nil {
		t.Fatal(err)
	}
	if got := string(na1.Bytes(p, 4)); got != "data" {
		t.Fatalf("data lost across restart: %q", got)
	}
	na2, _ := procA2.Thread(a2.ID())
	if na2.Bytes(q, 8)[0] != 7 {
		t.Fatal("huge data lost across restart")
	}
	na1.Free(p)
	na2.Free(q)
	na2.Maintain()
	if err := pod.Heap().CheckAll(b.ID()); err != nil {
		t.Fatal(err)
	}
}

// Restart is claim-based: when two goroutines race to restart the same
// dead process, exactly one performs the recovery; the loser gets a
// typed error instead of double-recovering live slots (which the old
// check-then-act window allowed).
func TestPodRestartConcurrent(t *testing.T) {
	pod, _ := NewPod(smallPodConfig())
	procA, procB := pod.NewProcess(), pod.NewProcess()
	a1, _ := procA.AttachThread()
	a2, _ := procA.AttachThread()
	if _, err := procB.AttachThread(); err != nil {
		t.Fatal(err)
	}
	p1, _ := a1.Alloc(256)
	p2, _ := a2.Alloc(600 << 10)
	pod.KillProcess(procA)

	const racers = 4
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		wins []*Process
		errs []error
	)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			np, _, err := procA.Restart()
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, err)
			} else {
				wins = append(wins, np)
			}
		}()
	}
	wg.Wait()

	if len(wins) != 1 {
		t.Fatalf("%d restarts succeeded, want exactly 1 (errs: %v)", len(wins), errs)
	}
	for _, err := range errs {
		if !errors.Is(err, ErrRestartClaimed) && !errors.Is(err, ErrNotCrashed) {
			t.Fatalf("loser error = %v, want ErrRestartClaimed or ErrNotCrashed", err)
		}
	}
	np := wins[0]
	if got := np.TIDs(); len(got) != 2 {
		t.Fatalf("restarted process owns %v, want 2 slots", got)
	}
	nt1, err := np.Thread(a1.ID())
	if err != nil {
		t.Fatal(err)
	}
	nt2, err := np.Thread(a2.ID())
	if err != nil {
		t.Fatal(err)
	}
	nt1.Free(p1)
	nt2.Free(p2)
	nt2.Maintain()
	if err := pod.Heap().CheckAll(nt1.ID()); err != nil {
		t.Fatal(err)
	}
	// The settled loser keeps failing typed, and the winner's process is
	// itself restartable-rejected while alive.
	if _, _, err := procA.Restart(); !errors.Is(err, ErrNotCrashed) {
		t.Fatalf("post-race restart: err = %v, want ErrNotCrashed", err)
	}
	if _, _, err := np.Restart(); !errors.Is(err, ErrNotCrashed) {
		t.Fatalf("restart of live winner: err = %v, want ErrNotCrashed", err)
	}
}

func TestPodRecoverNotCrashedTyped(t *testing.T) {
	pod, _ := NewPod(smallPodConfig())
	proc := pod.NewProcess()
	th, _ := proc.AttachThread()
	if _, _, err := proc.Recover(th.ID()); !errors.Is(err, ErrNotCrashed) {
		t.Fatalf("recover of live thread: err = %v, want ErrNotCrashed", err)
	}
	th.Kill()
	th.Kill() // idempotent
	if _, _, err := proc.Recover(th.ID()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := proc.Recover(th.ID()); !errors.Is(err, ErrNotCrashed) {
		t.Fatalf("second recover: err = %v, want ErrNotCrashed", err)
	}
}

// A crash during Restart's slot recovery leaves a re-runnable state: the
// harness marks the victim crashed and calls Restart again.
func TestPodRestartCrashRerun(t *testing.T) {
	cfg := smallPodConfig()
	inj := crash.NewInjector()
	cfg.Crash = inj
	pod, _ := NewPod(cfg)
	proc := pod.NewProcess()
	th1, _ := proc.AttachThread()
	th2, _ := proc.AttachThread()
	p1, _ := th1.Alloc(512)
	p2, _ := th2.Alloc(512)

	pod.KillProcess(proc)
	inj.Arm("recover.post-rebuild-small", th1.ID(), 0)
	var np *Process
	c := crash.Run(func() {
		var err error
		np, _, err = proc.Restart()
		if err != nil {
			t.Errorf("restart: %v", err)
		}
	})
	if c == nil {
		t.Fatal("crash inside Restart never fired")
	}
	inj.Disarm()
	pod.Heap().MarkCrashed(c.TID)

	np, reports, err := proc.Restart()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("second restart recovered %d slots, want 2", len(reports))
	}
	nt1, err := np.Thread(th1.ID())
	if err != nil {
		t.Fatal(err)
	}
	nt2, err := np.Thread(th2.ID())
	if err != nil {
		t.Fatal(err)
	}
	nt1.Free(p1)
	nt2.Free(p2)
	if err := pod.Heap().CheckAll(nt1.ID()); err != nil {
		t.Fatal(err)
	}
}
