package cxlalloc

import (
	"sync"
	"testing"

	"cxlalloc/internal/atomicx"
	"cxlalloc/internal/crash"
)

func smallPodConfig() Config {
	cfg := DefaultConfig()
	cfg.NumThreads = 8
	cfg.MaxSmallSlabs = 64
	cfg.MaxLargeSlabs = 8
	cfg.HugeRegionSize = 1 << 20
	cfg.NumReservations = 8
	cfg.DescsPerThread = 16
	cfg.NumHazards = 8
	return cfg
}

func TestPodQuickstart(t *testing.T) {
	pod, err := NewPod(smallPodConfig())
	if err != nil {
		t.Fatal(err)
	}
	proc := pod.NewProcess()
	th, err := proc.AttachThread()
	if err != nil {
		t.Fatal(err)
	}
	p, err := th.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	copy(th.Bytes(p, 5), "hello")
	if got := string(th.Bytes(p, 5)); got != "hello" {
		t.Fatalf("read back %q", got)
	}
	if th.UsableSize(p) < 128 {
		t.Fatal("usable size too small")
	}
	th.Free(p)
	if f := th.Footprint(); f.Total() == 0 {
		t.Fatal("footprint empty after use")
	}
}

func TestPodCrossProcessSharing(t *testing.T) {
	pod, _ := NewPod(smallPodConfig())
	procA, procB := pod.NewProcess(), pod.NewProcess()
	if procA.ID() == procB.ID() {
		t.Fatal("duplicate process IDs")
	}
	a, _ := procA.AttachThread()
	b, _ := procB.AttachThread()
	p, err := a.Alloc(1024)
	if err != nil {
		t.Fatal(err)
	}
	copy(a.Bytes(p, 9), "cxl-pod-!")
	if got := string(b.Bytes(p, 9)); got != "cxl-pod-!" {
		t.Fatalf("cross-process read = %q", got)
	}
	if procB.FaultStats().Faults == 0 {
		t.Fatal("process B read without faulting: PC-T untested")
	}
	b.Free(p) // remote free
}

func TestPodThreadSlotManagement(t *testing.T) {
	cfg := smallPodConfig()
	cfg.NumThreads = 2
	pod, _ := NewPod(cfg)
	proc := pod.NewProcess()
	t1, err := proc.AttachThread()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proc.AttachThreadID(t1.ID()); err == nil {
		t.Fatal("claimed an in-use slot")
	}
	t2, err := proc.AttachThreadID(1)
	if err != nil {
		t.Fatal(err)
	}
	if t1.ID() == t2.ID() {
		t.Fatal("duplicate thread IDs")
	}
	if _, err := proc.AttachThread(); err == nil {
		t.Fatal("attached beyond NumThreads")
	}
	if _, err := proc.AttachThreadID(99); err == nil {
		t.Fatal("attached out-of-range slot")
	}
}

func TestPodCrashAndRecover(t *testing.T) {
	cfg := smallPodConfig()
	inj := crash.NewInjector()
	cfg.Crash = inj
	pod, _ := NewPod(cfg)
	proc := pod.NewProcess()
	th, _ := proc.AttachThread()

	inj.Arm("small.alloc.post-take", th.ID(), 0)
	c := th.Run(func() { th.Alloc(64) })
	if c == nil {
		t.Fatal("crash never fired")
	}
	inj.Disarm()

	th2, rep, err := proc.Recover(th.ID())
	if err != nil {
		t.Fatal(err)
	}
	if rep.PendingAlloc == 0 {
		t.Fatal("pending allocation not reported")
	}
	th2.Free(rep.PendingAlloc) // the app declines the orphaned block
	p, err := th2.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	th2.Free(p)
}

func TestPodKillAndRecoverCrossProcess(t *testing.T) {
	pod, _ := NewPod(smallPodConfig())
	procA := pod.NewProcess()
	a, _ := procA.AttachThread()
	p, _ := a.Alloc(256)
	copy(a.Bytes(p, 4), "live")
	a.Kill()
	// The whole process died; recover the slot into a new process.
	procB := pod.NewProcess()
	b, rep, err := procB.Recover(a.ID())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Op != "none" {
		t.Fatalf("unexpected in-flight op %q", rep.Op)
	}
	if got := string(b.Bytes(p, 4)); got != "live" {
		t.Fatalf("data lost across process restart: %q", got)
	}
	b.Free(p)
}

func TestPodConcurrentThreads(t *testing.T) {
	pod, _ := NewPod(smallPodConfig())
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		proc := pod.NewProcess()
		th, err := proc.AttachThread()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(th *Thread) {
			defer wg.Done()
			for j := 0; j < 2000; j++ {
				p, err := th.Alloc(1 + j%1500)
				if err != nil {
					t.Errorf("thread %d: %v", th.ID(), err)
					return
				}
				th.Bytes(p, 1)[0] = byte(j)
				th.Free(p)
			}
		}(th)
	}
	wg.Wait()
}

func TestPodModes(t *testing.T) {
	for _, mode := range []atomicx.Mode{atomicx.ModeDRAM, atomicx.ModeHWcc, atomicx.ModeSWFlush, atomicx.ModeMCAS} {
		cfg := smallPodConfig()
		cfg.Mode = mode
		pod, err := NewPod(cfg)
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		proc := pod.NewProcess()
		th, _ := proc.AttachThread()
		p, err := th.Alloc(100)
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		th.Free(p)
	}
}

func TestPodHugeLifecycle(t *testing.T) {
	pod, _ := NewPod(smallPodConfig())
	proc := pod.NewProcess()
	th, _ := proc.AttachThread()
	p, err := th.Alloc(600 << 10) // > 512 KiB: huge heap
	if err != nil {
		t.Fatal(err)
	}
	b := th.Bytes(p, 600<<10)
	b[0], b[len(b)-1] = 1, 2
	th.Free(p)
	th.Maintain()
	// Space reclaimed: can allocate again repeatedly.
	for i := 0; i < 4; i++ {
		q, err := th.Alloc(600 << 10)
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		th.Free(q)
		th.Maintain()
	}
}

func TestPodInvalidConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumThreads = -1
	if _, err := NewPod(cfg); err == nil {
		t.Fatal("invalid config accepted")
	}
}
