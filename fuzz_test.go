package cxlalloc

// Fuzz targets: `go test` runs the seed corpus as regression tests;
// `go test -fuzz=FuzzPodOps` explores further. The pod target decodes
// arbitrary bytes into an allocate/write/free/crash/recover op stream
// and checks full-heap invariants afterwards.

import (
	"testing"

	"cxlalloc/internal/crash"
)

func fuzzConfig(inj *crash.Injector) Config {
	cfg := DefaultConfig()
	cfg.NumThreads = 4
	cfg.MaxSmallSlabs = 256
	cfg.MaxLargeSlabs = 16
	cfg.HugeRegionSize = 2 << 20
	cfg.NumReservations = 8
	cfg.DescsPerThread = 32
	cfg.NumHazards = 16
	cfg.Crash = inj
	return cfg
}

func FuzzPodOps(f *testing.F) {
	f.Add([]byte{0x01, 0x40, 0x02, 0x00, 0x03})
	f.Add([]byte{0x01, 0xFF, 0x01, 0x10, 0x02, 0x01, 0x02, 0x00})
	f.Add([]byte{0x04, 0x01, 0x40, 0x05, 0x01, 0x10})
	f.Add([]byte{0x01, 0x08, 0x01, 0x08, 0x01, 0x08, 0x02, 0x02, 0x02, 0x01, 0x02, 0x00})

	f.Fuzz(func(t *testing.T, program []byte) {
		inj := crash.NewInjector()
		pod, err := NewPod(fuzzConfig(inj))
		if err != nil {
			t.Fatal(err)
		}
		procA, procB := pod.NewProcess(), pod.NewProcess()
		threads := make([]*Thread, 0, 4)
		for i := 0; i < 4; i++ {
			proc := procA
			if i%2 == 1 {
				proc = procB
			}
			th, err := proc.AttachThread()
			if err != nil {
				t.Fatal(err)
			}
			threads = append(threads, th)
		}
		var live []Ptr
		tid := 0
		pc := 0
		next := func() (byte, bool) {
			if pc >= len(program) {
				return 0, false
			}
			b := program[pc]
			pc++
			return b, true
		}
		for steps := 0; steps < 512; steps++ {
			op, ok := next()
			if !ok {
				break
			}
			th := threads[tid]
			switch op % 6 {
			case 0: // switch thread
				b, _ := next()
				tid = int(b) % len(threads)
			case 1: // alloc (size from next byte, scaled)
				b, _ := next()
				size := (int(b) + 1) * 37 // 37 .. ~9.5k
				p, err := th.Alloc(size)
				if err != nil {
					continue // OOM under fuzz pressure is legal
				}
				th.Bytes(p, 1)[0] = b
				live = append(live, p)
			case 2: // free some live pointer (possibly remote)
				if len(live) == 0 {
					continue
				}
				b, _ := next()
				i := int(b) % len(live)
				th.Free(live[i])
				live = append(live[:i], live[i+1:]...)
			case 3: // maintain
				th.Maintain()
			case 4: // crash at the next alloc, then recover
				inj.Arm("small.alloc.post-take", th.ID(), 0)
				c := th.Run(func() {
					p, err := th.Alloc(64)
					if err == nil {
						live = append(live, p)
					}
				})
				inj.Disarm()
				if c != nil {
					proc := procA
					if th.Process().ID() == procB.ID() {
						proc = procB
					}
					th2, rep, err := proc.Recover(th.ID())
					if err != nil {
						t.Fatalf("recover: %v", err)
					}
					if rep.PendingAlloc != 0 {
						live = append(live, rep.PendingAlloc)
					}
					threads[tid] = th2
				}
			case 5: // huge alloc
				p, err := th.Alloc(600 << 10)
				if err != nil {
					continue
				}
				live = append(live, p)
			}
		}
		// Cleanup and audit.
		for _, p := range live {
			threads[0].Free(p)
		}
		for _, th := range threads {
			th.Maintain()
		}
		if err := pod.Heap().CheckAll(threads[0].ID()); err != nil {
			t.Fatalf("invariants violated by program %x: %v", program, err)
		}
	})
}

func FuzzCrossProcessBytes(f *testing.F) {
	f.Add(uint16(100), []byte("hello"))
	f.Add(uint16(4096), []byte{0})
	f.Fuzz(func(t *testing.T, sizeRaw uint16, data []byte) {
		size := int(sizeRaw)%60000 + 1
		pod, err := NewPod(fuzzConfig(nil))
		if err != nil {
			t.Fatal(err)
		}
		a, _ := pod.NewProcess().AttachThread()
		b, _ := pod.NewProcess().AttachThread()
		p, err := a.Alloc(size)
		if err != nil {
			t.Skip("heap too small for fuzz case")
		}
		n := len(data)
		if n > size {
			n = size
		}
		copy(a.Bytes(p, size), data[:n])
		got := b.Bytes(p, size)
		for i := 0; i < n; i++ {
			if got[i] != data[i] {
				t.Fatalf("byte %d: %d != %d", i, got[i], data[i])
			}
		}
		b.Free(p)
	})
}
