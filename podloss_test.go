package cxlalloc

import (
	"testing"
)

// TestPodLossAllSlotsDark covers the whole-pod failure mode the fabric
// layer (internal/fabric) builds on: every thread slot in the pod goes
// dark at the same instant, leaving no survivor to drive the watchdog.
//
// Two invariants:
//
//  1. A fully dark pod is inert. The watchdog rides on Thread.Run, so
//     with zero live threads there is no claim storm and no phantom
//     repair — the pod waits for an external rescuer (a fabric failover,
//     or an operator Restart as here).
//  2. After one dead process Restarts, its threads' watchdog repairs
//     every remaining dark slot exactly once each — concurrent pollers
//     must not double-claim — with zero false takeovers, and the heap
//     audits clean with all pre-kill data intact.
func TestPodLossAllSlotsDark(t *testing.T) {
	pod, err := NewPodWith(PodConfig{
		Config:      smallPodConfig(),
		AutoRecover: true,
		// The driver below is a single goroutine rotating over the
		// restarted threads, so no slot can be starved of renewals by
		// scheduler skew — a modest grace (1024 ticks) is deterministic
		// here. Wall-clock harnesses (livechaos, fabricchaos) calibrate
		// grace against measured tick rate instead.
		Liveness: LivenessConfig{RenewInterval: 4, GraceMult: 256, PollInterval: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	const threads = 8 // smallPodConfig's NumThreads
	procA, procB := pod.NewProcess(), pod.NewProcess()
	owner := func(tid int) *Process {
		if tid%2 == 0 {
			return procA
		}
		return procB
	}
	for tid := 0; tid < threads; tid++ {
		if _, err := owner(tid).AttachThreadID(tid); err != nil {
			t.Fatal(err)
		}
	}

	// Warm every slot: allocate a marked block per thread so the repair
	// path has live state to walk, and so data survival is checkable.
	held := make([]Ptr, threads)
	for tid := 0; tid < threads; tid++ {
		th, err := pod.ThreadOf(tid)
		if err != nil {
			t.Fatal(err)
		}
		if c := th.Run(func() {
			p, aerr := th.Alloc(256)
			if aerr != nil {
				t.Errorf("tid %d: %v", tid, aerr)
				return
			}
			b := th.Bytes(p, 8)
			b[0] = byte('A' + tid)
			held[tid] = p
		}); c != nil {
			t.Fatalf("unexpected crash warming tid %d at %s", c.TID, c.Point)
		}
	}

	// Lights out: both processes die, so all eight slots go dark at once.
	if got := len(pod.KillProcess(procA)) + len(pod.KillProcess(procB)); got != threads {
		t.Fatalf("killed %d slots, want %d", got, threads)
	}
	for tid := 0; tid < threads; tid++ {
		if pod.Heap().Alive(tid) {
			t.Fatalf("tid %d still alive after whole-pod kill", tid)
		}
	}

	// Invariant 1: nothing stirs. No survivor means no watchdog tick, so
	// the pod must show zero claims, zero repairs, zero false takeovers.
	for _, ev := range pod.LivenessEvents() {
		if ev.Kind == LivenessClaim || ev.Kind == LivenessRepair {
			t.Fatalf("phantom %v on dark pod: victim %d", ev.Kind, ev.Victim)
		}
	}
	if n := pod.FalseTakeovers(); n != 0 {
		t.Fatalf("dark pod recorded %d false takeovers", n)
	}

	// Rescue: restart process A only. Its four slots come back through
	// the restart protocol; process B's four stay dark with expired
	// leases for the watchdog to find.
	newA, reports, err := procA.Restart()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != threads/2 {
		t.Fatalf("restart recovered %d slots, want %d", len(reports), threads/2)
	}

	// Drive the restarted threads round-robin: every Run ticks the pod
	// clock and renews the caller's lease, and the rotating pollers must
	// still repair each dark slot exactly once (claim generations and
	// the poll-window CAS arbitrate, even though every poll is a
	// candidate claimant).
	drivers := make([]*Thread, 0, threads/2)
	for _, tid := range newA.TIDs() {
		th, terr := newA.Thread(tid)
		if terr != nil {
			t.Fatal(terr)
		}
		drivers = append(drivers, th)
	}
	repaired := func() map[int]int {
		n := make(map[int]int)
		for _, ev := range pod.LivenessEvents() {
			if ev.Kind == LivenessRepair {
				n[ev.Victim]++
			}
		}
		return n
	}
	const maxSteps = 1 << 20
	done := false
	for i := 0; i < maxSteps && !done; i++ {
		th := drivers[i%len(drivers)]
		if c := th.Run(func() {
			q, aerr := th.Alloc(64)
			if aerr == nil {
				th.Free(q)
			}
		}); c != nil {
			t.Fatalf("driver tid %d crashed at %s", c.TID, c.Point)
		}
		if i%1024 == 0 {
			done = len(repaired()) == threads/2
		}
	}
	if !done && len(repaired()) != threads/2 {
		t.Fatalf("watchdog repaired only %v within %d steps", repaired(), maxSteps)
	}

	// Invariant 2: each of B's slots repaired exactly once, no false
	// alarms, no false takeovers, and the dark slots' data survived into
	// the adopting process.
	got := repaired()
	for tid := 1; tid < threads; tid += 2 {
		if got[tid] != 1 {
			t.Errorf("tid %d repaired %d times, want exactly 1", tid, got[tid])
		}
	}
	for tid := 0; tid < threads; tid += 2 {
		if got[tid] != 0 {
			t.Errorf("restarted tid %d repaired %d times by watchdog, want 0", tid, got[tid])
		}
	}
	for _, ev := range pod.LivenessEvents() {
		if ev.Kind == LivenessFalseAlarm {
			t.Errorf("false alarm on tid %d", ev.Victim)
		}
		if ev.Kind == LivenessClaim && ev.WasAlive {
			t.Errorf("claim on live-and-leased tid %d", ev.Victim)
		}
	}
	if n := pod.FalseTakeovers(); n != 0 {
		t.Errorf("%d false takeovers after rescue", n)
	}
	for tid := 0; tid < threads; tid++ {
		th, terr := pod.ThreadOf(tid)
		if terr != nil {
			t.Fatalf("tid %d unreachable after rescue: %v", tid, terr)
		}
		if b := th.Bytes(held[tid], 8); b[0] != byte('A'+tid) {
			t.Errorf("tid %d data lost across repair: got %q", tid, b[0])
		}
		th.Free(held[tid])
	}
	th0, _ := pod.ThreadOf(0)
	th0.Maintain()
	if err := pod.Heap().CheckAll(0); err != nil {
		t.Fatalf("heap audit after whole-pod rescue: %v", err)
	}
}
